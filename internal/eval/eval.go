// Package eval is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IV–§V) on the synthetic substrate:
//
//	Table I/II/III — ASR/AVQ/APR of {MPass, RLA, MAB, GAMMA, MalRNN} against
//	                 {MalConv, NonNeg, LightGBM, MalGCG}  (RunOfflineGrid)
//	§IV-A          — functionality verification of all AEs (RunFunctionalityCheck)
//	Figure 3       — ASR of the five attacks against AV1..AV5 (RunAVGrid)
//	Table IV       — UPX/PESpin/ASPack vs MPass on the AVs (RunPackerComparison)
//	Figure 4       — bypass rate under AV learning over five rounds (RunLearningCurve)
//	Table V        — Other-sec ablation (RunOtherSecAblation)
//	Table VI       — random-data ablation (RunRandomDataAblation)
//	§III-B finding — PEM section ranking (RunPEMRanking)
//	DESIGN ablation — known-ensemble size (RunEnsembleAblation)
//
// The suite owns the corpus, the trained detectors, the AV simulators, the
// donor pools, and the MalRNN language model, so one Setup call prepares
// every experiment.
package eval

import (
	"fmt"

	"mpass/internal/attacks"
	"mpass/internal/av"
	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/nn"
	"mpass/internal/parallel"
	"mpass/internal/sandbox"
)

// Config sizes the evaluation. Defaults reproduce the paper's shape at
// laptop scale; the paper's own sizes (2000 malware, 50k donors) are noted
// inline.
type Config struct {
	Seed int64
	// Corpus sizing (paper: 2000 malware + separate benign corpora).
	NumMalware, NumBenign int
	TrainFrac             float64
	// Victims is how many detected malware samples each experiment attacks.
	Victims int
	// MaxQueries is the per-sample budget (paper: 100).
	MaxQueries int
	// MPassDonors is MPass's benign-donor pool size (paper: 50,000).
	MPassDonors int
	// BaselineDonors is the baselines' payload pool size (their published
	// tools ship small fixed payload sets).
	BaselineDonors int
	// Train configures detector training.
	Train detect.TrainConfig
	// Workers bounds the suite's parallelism everywhere — concurrent model
	// training in Setup, batched scoring, and the per-victim attack fan-out
	// of runCell (0 = GOMAXPROCS, negative is invalid).
	Workers int
}

// Validate rejects configurations Setup cannot honor.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("eval: Workers must be >= 0 (0 = GOMAXPROCS), got %d", c.Workers)
	}
	return nil
}

// DefaultConfig is the full benchmark configuration.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		NumMalware: 60, NumBenign: 60, TrainFrac: 0.67,
		Victims:     20,
		MaxQueries:  100,
		MPassDonors: 256, BaselineDonors: 6,
		Train: detect.DefaultTrainConfig(),
	}
}

// QuickConfig is a scaled-down configuration for tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.NumMalware, cfg.NumBenign = 40, 40
	cfg.TrainFrac = 0.75
	cfg.Victims = 6
	cfg.MaxQueries = 40
	cfg.MPassDonors = 64
	return cfg
}

// Suite bundles everything the experiments need. The embedded detect.Suite
// is the §IV-A offline-model set — the same type the persistence layer
// (detect.SaveSuite/LoadSuite) and the serving daemon (internal/server,
// cmd/mpassd) keep resident, so its OfflineTargets/KnownFor accessors are
// promoted here.
type Suite struct {
	Cfg Config
	DS  *corpus.Dataset

	detect.Suite
	AVs []*av.AV

	MPassDonorPool    [][]byte
	BaselineDonorPool [][]byte
	LM                *nn.ByteLM

	// Victims are test-split malware samples verified to (1) run with
	// malicious behaviour in the sandbox and (2) be detected by every
	// offline model — the paper's two sample requirements.
	Victims []*corpus.Sample
}

// Setup builds the corpus, trains all detectors and AV simulators, trains
// the MalRNN language model, and selects the victim set. The three model
// groups — offline detectors, AV simulators, MalRNN — share nothing but
// the read-only corpus and donor pools, so they train concurrently on the
// Workers pool; each group is internally concurrent as well.
func Setup(cfg Config) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Train.Workers == 0 {
		cfg.Train.Workers = cfg.Workers
	}
	s := &Suite{Cfg: cfg}
	s.DS = corpus.MakeAugmentedDataset(cfg.Seed, cfg.NumMalware, cfg.NumBenign, cfg.TrainFrac)

	g := corpus.NewGenerator(cfg.Seed + 77000)
	for i := 0; i < cfg.MPassDonors; i++ {
		s.MPassDonorPool = append(s.MPassDonorPool, g.Sample(corpus.Benign).Raw)
	}
	for i := 0; i < cfg.BaselineDonors; i++ {
		s.BaselineDonorPool = append(s.BaselineDonorPool, g.Sample(corpus.Benign).Raw)
	}

	// The donor programs are ordinary benign software; vendors have the
	// same files in their benign corpora (see av.SuiteConfig.ExtraBenignRef).
	extraRef := append(append([][]byte{}, s.MPassDonorPool...), s.BaselineDonorPool...)
	err := parallel.Do(cfg.Workers,
		func() (e error) {
			s.MalConv, s.NonNeg, s.LGBM, s.MalGCG, e = detect.TrainAll(s.DS, cfg.Train)
			if e != nil {
				e = fmt.Errorf("eval: offline models: %w", e)
			}
			return
		},
		func() (e error) {
			s.AVs, e = av.NewSuite(s.DS, av.SuiteConfig{
				Train: cfg.Train, Seed: cfg.Seed + 9000, ExtraBenignRef: extraRef,
			})
			if e != nil {
				e = fmt.Errorf("eval: AV suite: %w", e)
			}
			return
		},
		func() (e error) {
			s.LM, e = attacks.TrainMalRNNLM(s.BaselineDonorPool, 3, cfg.Seed+5)
			if e != nil {
				e = fmt.Errorf("eval: MalRNN LM: %w", e)
			}
			return
		},
	)
	if err != nil {
		return nil, err
	}

	// Victim selection: sandbox-verified malicious behaviour + detected by
	// all offline models. Candidate filtering runs the sandbox per sample on
	// the pool; the detector checks then go through one batched scoring pass
	// per model over the surviving candidates.
	testMal := make([]*corpus.Sample, 0, len(s.DS.Test))
	for _, m := range s.DS.Test {
		if m.Family == corpus.Malware {
			testMal = append(testMal, m)
		}
	}
	behaving := make([]bool, len(testMal))
	parallel.ForEach(cfg.Workers, len(testMal), func(i int) {
		res, err := sandbox.Run(testMal[i].Raw)
		behaving[i] = err == nil && res.Halted() && hasSensitive(res.Trace)
	})
	var candidates []*corpus.Sample
	var raws [][]byte
	for i, ok := range behaving {
		if ok {
			candidates = append(candidates, testMal[i])
			raws = append(raws, testMal[i].Raw)
		}
	}
	detected := make([]bool, len(candidates))
	for i := range detected {
		detected[i] = true
	}
	for _, d := range s.OfflineTargets() {
		for i, flagged := range detect.LabelAll(d, raws, cfg.Workers) {
			detected[i] = detected[i] && flagged
		}
	}
	for i, m := range candidates {
		if detected[i] {
			s.Victims = append(s.Victims, m)
		}
	}
	if len(s.Victims) == 0 {
		return nil, fmt.Errorf("eval: no eligible victims")
	}
	if len(s.Victims) > cfg.Victims {
		s.Victims = s.Victims[:cfg.Victims]
	}
	return s, nil
}

func hasSensitive(tr sandbox.Trace) bool {
	for _, e := range tr {
		if corpus.IsSensitive(e.API) {
			return true
		}
	}
	return false
}

// AttackFactory builds per-victim attack instances (attacks keep per-run
// RNG state, so each victim gets a fresh instance seeded deterministically).
type AttackFactory struct {
	Name string
	New  func(seed int64) (attacks.Attack, error)
}

// Factories returns the five attacks of Tables I–III, configured for the
// named target.
func (s *Suite) Factories(target string) []AttackFactory {
	base := attacks.Config{Donors: s.BaselineDonorPool, MaxQueries: s.Cfg.MaxQueries}
	return []AttackFactory{
		{Name: "MPass", New: func(seed int64) (attacks.Attack, error) {
			cfg := core.DefaultConfig(s.KnownFor(target), s.MPassDonorPool)
			cfg.MaxQueries = s.Cfg.MaxQueries
			cfg.Seed = seed
			atk, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return attacks.NewMPass(atk), nil
		}},
		{Name: "RLA", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewRLA(c)
		}},
		{Name: "MAB", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewMAB(c)
		}},
		{Name: "GAMMA", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewGAMMA(c)
		}},
		{Name: "MalRNN", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewMalRNN(c, s.LM)
		}},
	}
}

// Metrics are the paper's three comparison measures (§IV-A).
type Metrics struct {
	Success int
	Total   int
	Queries int     // summed over all victims (Q_all)
	SumAPR  float64 // summed over successful AEs
}

// ASR is the attack success rate in percent.
func (m *Metrics) ASR() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.Success) / float64(m.Total)
}

// AVQ is Q_all / N, the paper's average-query metric.
func (m *Metrics) AVQ() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Queries) / float64(m.Total)
}

// APR is the mean file-size increment of successful AEs, in percent.
func (m *Metrics) APR() float64 {
	if m.Success == 0 {
		return 0
	}
	return m.SumAPR / float64(m.Success)
}

// Cell is one (attack, target) grid entry.
type Cell struct {
	Attack string
	Target string
	Metrics
	// AEs holds (victim index, AE bytes) for every success; consumed by
	// the functionality check and the AV-learning experiment.
	AEs []VictimAE
}

// VictimAE pairs a successful adversarial example with its victim.
type VictimAE struct {
	VictimIdx int
	AE        []byte
}

// runCell attacks every victim with per-victim instances of one attack
// against one oracle, fanned out on the Workers pool. (The pool helper
// keeps at most Workers attacks in flight; the previous hand-rolled
// semaphore spawned every victim's goroutine up front.)
func (s *Suite) runCell(factory AttackFactory, oracle core.Oracle, targetName string) (*Cell, error) {
	cell := &Cell{Attack: factory.Name, Target: targetName}
	type out struct {
		idx int
		res *core.Result
		err error
	}
	results := make([]out, len(s.Victims))
	parallel.ForEach(s.Cfg.Workers, len(s.Victims), func(i int) {
		atk, err := factory.New(s.Cfg.Seed + int64(i)*7919)
		if err != nil {
			results[i] = out{idx: i, err: err}
			return
		}
		res, err := atk.Run(s.Victims[i].Raw, &core.CountingOracle{Oracle: oracle})
		results[i] = out{idx: i, res: res, err: err}
	})

	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("eval: %s vs %s, victim %d: %w",
				factory.Name, targetName, r.idx, r.err)
		}
		cell.Total++
		cell.Queries += r.res.Queries
		if r.res.Success {
			cell.Success++
			orig := len(s.Victims[r.idx].Raw)
			cell.SumAPR += 100 * float64(len(r.res.AE)-orig) / float64(orig)
			cell.AEs = append(cell.AEs, VictimAE{VictimIdx: r.idx, AE: r.res.AE})
		}
	}
	return cell, nil
}
