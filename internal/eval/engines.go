// Bridge from the evaluation harness to the engine driver layer: an eval
// Suite — the four offline models plus the five commercial-AV simulators —
// exposed as one engine.Set, ready to seed an engine.Registry for a serving
// daemon or a multi-detector evaluation matrix. The offline models carry
// content-addressed weight versions; the AV simulators are live heterogeneous
// ensembles (signature state mutates through LearnRound), so they register as
// runtime-only drivers versioned by the suite's training seed.
package eval

import (
	"fmt"

	"mpass/internal/engine"
)

// EngineSet wraps the suite's models as engine drivers, offline targets
// first (§IV-A order, matching OfflineTargets) and AV simulators after. The
// returned set is independent of the suite only in structure — drivers share
// the underlying model weights and AV signature state.
func (s *Suite) EngineSet() (*engine.Set, error) {
	set, err := engine.FromSuite(&s.Suite)
	if err != nil {
		return nil, fmt.Errorf("eval: wrapping offline models: %w", err)
	}
	drivers := append([]engine.Driver(nil), set.Drivers()...)
	for _, a := range s.AVs {
		drv, err := engine.NewAVDriver(a, fmt.Sprintf("live-%s-seed%d", a.Name(), s.Cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("eval: wrapping AV %s: %w", a.Name(), err)
		}
		drivers = append(drivers, drv)
	}
	return engine.NewSet(drivers...)
}
