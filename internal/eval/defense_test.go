package eval

import (
	"strings"
	"testing"
)

func TestAdversarialTrainingSuppressionIsWeak(t *testing.T) {
	if testing.Short() {
		t.Skip("AT probe in -short mode")
	}
	s := quickSuite(t)
	res, err := s.RunAdversarialTraining()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports classic AT suppressing MPass by <10 points. On this
	// substrate AT is *stronger* (a documented deviation, EXPERIMENTS.md):
	// with a small synthetic corpus the retrained conv can memorize the
	// stub/key artifact distribution. The test pins the probe's mechanics
	// — a meaningful baseline and a finite, reported suppression — rather
	// than the paper's exact magnitude.
	if res.BaselineASR < 50 {
		t.Fatalf("baseline ASR %.1f too low for the probe to be meaningful", res.BaselineASR)
	}
	if res.ATASR < 0 || res.ATASR > res.BaselineASR {
		t.Errorf("nonsensical AT result: %.1f -> %.1f", res.BaselineASR, res.ATASR)
	}
	// Hardened model must stay usable on clean data.
	if res.CleanAccAfter < 80 {
		t.Errorf("clean accuracy collapsed to %.1f%% after AT", res.CleanAccAfter)
	}
	out := RenderAT("probe", res)
	if !strings.Contains(out, "suppression") {
		t.Error("RenderAT output malformed")
	}
}

func TestGradientATProbeDoesNotHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("AT probe in -short mode")
	}
	s := quickSuite(t)
	res, err := s.RunGradientATProbe()
	if err != nil {
		t.Fatal(err)
	}
	// Uniform byte noise is out-of-distribution for real function-preserving
	// AEs; it must suppress far less than training on genuine MPass AEs —
	// the paper's §VI contrast.
	if res.ATASR < res.BaselineASR/2 {
		t.Errorf("noise-AT suppressed ASR from %.1f to %.1f; expected little effect",
			res.BaselineASR, res.ATASR)
	}
}
