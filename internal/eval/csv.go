package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the grid in long form — one row per (attack, target)
// cell with all three metrics — for downstream analysis and plotting.
func (g *Grid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attack", "target", "asr_pct", "avq", "apr_pct", "success", "total", "queries"}); err != nil {
		return err
	}
	for _, atk := range g.Attacks {
		for _, tgt := range g.Targets {
			c := g.Cell(atk, tgt)
			if c == nil {
				continue
			}
			rec := []string{
				atk, tgt,
				strconv.FormatFloat(c.ASR(), 'f', 2, 64),
				strconv.FormatFloat(c.AVQ(), 'f', 2, 64),
				strconv.FormatFloat(c.APR(), 'f', 2, 64),
				strconv.Itoa(c.Success),
				strconv.Itoa(c.Total),
				strconv.Itoa(c.Queries),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurvesCSV exports Figure-4-style bypass curves in long form — one
// row per (attack, round).
func WriteCurvesCSV(w io.Writer, avName string, curves LearningCurves) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"av", "attack", "round", "bypass_pct"}); err != nil {
		return err
	}
	for atk, series := range curves {
		for round, v := range series {
			rec := []string{
				avName, atk,
				strconv.Itoa(round),
				strconv.FormatFloat(v, 'f', 2, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFunctionalityCSV exports the §IV-A verification results.
func WriteFunctionalityCSV(w io.Writer, reports []FunctionalityReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attack", "preserved", "broken", "preserved_pct"}); err != nil {
		return err
	}
	for _, r := range reports {
		rec := []string{
			r.Attack,
			strconv.Itoa(r.Preserved),
			strconv.Itoa(r.Broken),
			fmt.Sprintf("%.2f", r.Rate()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
