package eval

import (
	"fmt"

	"mpass/internal/core"
	"mpass/internal/sandbox"
)

// Grid holds one experiment's attack × target matrix.
type Grid struct {
	Attacks []string
	Targets []string
	Cells   map[string]map[string]*Cell // attack -> target -> cell
}

func newGrid() *Grid { return &Grid{Cells: make(map[string]map[string]*Cell)} }

// Put inserts (or replaces) a cell, registering its attack and target rows.
// It is exported so report writers can merge reference rows across grids
// (e.g., MPass's Figure-3 row into the Table V/VI ablation grids).
func (g *Grid) Put(c *Cell) { g.put(c) }

func (g *Grid) put(c *Cell) {
	if g.Cells[c.Attack] == nil {
		g.Cells[c.Attack] = make(map[string]*Cell)
		g.Attacks = append(g.Attacks, c.Attack)
	}
	if _, seen := g.Cells[c.Attack][c.Target]; !seen {
		found := false
		for _, t := range g.Targets {
			if t == c.Target {
				found = true
				break
			}
		}
		if !found {
			g.Targets = append(g.Targets, c.Target)
		}
	}
	g.Cells[c.Attack][c.Target] = c
}

// Cell returns the cell for (attack, target), or nil.
func (g *Grid) Cell(attack, target string) *Cell {
	if m, ok := g.Cells[attack]; ok {
		return m[target]
	}
	return nil
}

// RunOfflineGrid runs all five attacks against the four offline models —
// the shared data behind Tables I (ASR), II (AVQ), and III (APR).
func (s *Suite) RunOfflineGrid() (*Grid, error) {
	grid := newGrid()
	for _, target := range s.OfflineTargets() {
		oracle := core.DetectorOracle{D: target}
		for _, f := range s.Factories(target.Name()) {
			cell, err := s.runCell(f, oracle, target.Name())
			if err != nil {
				return nil, err
			}
			grid.put(cell)
		}
	}
	return grid, nil
}

// RunAVGrid runs all five attacks against the five commercial-AV
// simulators — Figure 3, and the AE pools Figure 4 learns from.
func (s *Suite) RunAVGrid() (*Grid, error) {
	grid := newGrid()
	for _, target := range s.AVs {
		target.ResetSignatures()
		for _, f := range s.Factories(target.Name()) {
			cell, err := s.runCell(f, target, target.Name())
			if err != nil {
				return nil, err
			}
			grid.put(cell)
		}
	}
	return grid, nil
}

// FunctionalityReport gives, per attack, how many successful AEs reproduce
// the original behaviour trace in the sandbox (§IV-A "Verifying
// functionality-preserving"; the paper finds only RLA breaking 23%).
type FunctionalityReport struct {
	Attack    string
	Preserved int
	Broken    int
}

// Rate returns the preserved fraction in percent.
func (r FunctionalityReport) Rate() float64 {
	total := r.Preserved + r.Broken
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Preserved) / float64(total)
}

// RunFunctionalityCheck replays every successful AE of the grid against its
// original in the sandbox.
func (s *Suite) RunFunctionalityCheck(grid *Grid) ([]FunctionalityReport, error) {
	var out []FunctionalityReport
	for _, atk := range grid.Attacks {
		rep := FunctionalityReport{Attack: atk}
		for _, tgt := range grid.Targets {
			cell := grid.Cell(atk, tgt)
			if cell == nil {
				continue
			}
			for _, ae := range cell.AEs {
				ok, err := sandbox.BehaviourPreserved(s.Victims[ae.VictimIdx].Raw, ae.AE)
				if err != nil {
					return nil, fmt.Errorf("eval: functionality %s vs %s: %w", atk, tgt, err)
				}
				if ok {
					rep.Preserved++
				} else {
					rep.Broken++
				}
			}
		}
		out = append(out, rep)
	}
	return out, nil
}
