package core

import (
	"math/rand"
	"testing"

	"mpass/internal/detect"
	"mpass/internal/nn"
	"mpass/internal/tensor"
)

// TestByteScoreMatVecParity pins the byte-selection rewrite: scoring all 256
// candidate bytes with one embedding-table mat-vec per model must agree
// bit-for-bit with the per-byte byteScore reference, including positions
// beyond a shorter model's window (the seqLen skip path).
func TestByteScoreMatVecParity(t *testing.T) {
	mkDet := func(name string, cfg nn.ConvConfig) *detect.ConvDetector {
		t.Helper()
		net, err := nn.NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return &detect.ConvDetector{ModelName: name, Net: net, Threshold: 0.5}
	}
	// Different SeqLens so some probed positions fall outside the shorter
	// model's window; untrained weights are as good as trained ones for an
	// arithmetic-identity check.
	models := []detect.GradientModel{
		mkDet("short", nn.ConvConfig{SeqLen: 64, EmbedDim: 3, Kernel: 8, Stride: 8, Filters: 4, Seed: 31}),
		mkDet("long", nn.ConvConfig{SeqLen: 256, EmbedDim: 5, Kernel: 16, Stride: 8, Filters: 6, Hidden: 4, Seed: 32}),
	}

	rng := rand.New(rand.NewSource(123))
	raw := make([]byte, 300)
	rng.Read(raw)

	gs := make([]modelGrad, len(models))
	for mi, m := range models {
		ig := m.InputGradient(raw, 0)
		defer ig.Release()
		gs[mi] = modelGrad{g: ig.Grad, dim: m.EmbedDim(), seqLen: m.SeqLen()}
	}

	perModel := make(tensor.Vec, 256)
	scores := make(tensor.Vec, 256)
	// Positions inside both windows, inside only the long model's, and
	// outside both (every model skipped, scores all zero).
	for _, p := range []int{0, 17, 63, 64, 200, 255, 256, 280} {
		scores.Zero()
		for mi, m := range models {
			if p >= gs[mi].seqLen {
				continue
			}
			d := gs[mi].dim
			m.EmbedMatrix().MatVecInto(gs[mi].g[p*d:(p+1)*d], perModel)
			for b := range scores {
				scores[b] += perModel[b]
			}
		}
		for b := 0; b < 256; b++ {
			want := byteScore(gs, models, p, byte(b))
			if scores[b] != want {
				t.Fatalf("pos %d byte %d: mat-vec score %v != byteScore %v", p, b, scores[b], want)
			}
		}
	}
}
