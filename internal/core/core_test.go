package core

import (
	"sync"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/pefile"
	"mpass/internal/sandbox"
)

// test fixtures: one dataset, the detector suite, and donor pool, built once.
var (
	fixOnce sync.Once
	fixErr  error
	ds      *corpus.Dataset
	malconv *detect.ConvDetector
	nonneg  *detect.ConvDetector
	lgbm    *detect.GBDTDetector
	malgcg  *detect.ConvDetector
	donors  [][]byte
	victims []*corpus.Sample
)

func fixtures(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		ds = corpus.MakeAugmentedDataset(21, 40, 40, 0.75)
		malconv, nonneg, lgbm, malgcg, fixErr = detect.TrainAll(ds, detect.DefaultTrainConfig())
		if fixErr != nil {
			return
		}
		g := corpus.NewGenerator(5000)
		for i := 0; i < 30; i++ {
			donors = append(donors, g.Sample(corpus.Benign).Raw)
		}
		victims = detect.DetectedMalware(malconv, ds.Test)
	})
	if fixErr != nil {
		t.Fatalf("fixtures: %v", fixErr)
	}
	if len(victims) == 0 {
		t.Fatal("no detected malware to attack")
	}
}

func known(t *testing.T, exclude string) []detect.GradientModel {
	t.Helper()
	all := []detect.GradientModel{malconv, nonneg, malgcg}
	var out []detect.GradientModel
	for _, m := range all {
		if m.Name() != exclude {
			out = append(out, m)
		}
	}
	return out
}

func TestAttackBypassesMalConv(t *testing.T) {
	fixtures(t)
	cfg := DefaultConfig(known(t, "MalConv"), donors)
	cfg.Seed = 1
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	totalQ := 0
	n := 5
	if n > len(victims) {
		n = len(victims)
	}
	for _, v := range victims[:n] {
		oracle := &CountingOracle{Oracle: DetectorOracle{D: malconv}}
		res, err := atk.Attack(v.Raw, oracle)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Success {
			succ++
			totalQ += res.Queries
			if oracle.Queries != res.Queries {
				t.Errorf("query accounting mismatch: %d vs %d", oracle.Queries, res.Queries)
			}
			if _, err := pefile.Parse(res.AE); err != nil {
				t.Errorf("%s: AE is not a valid PE: %v", v.Name, err)
			}
		}
	}
	if succ < n-1 {
		t.Errorf("bypassed MalConv on %d/%d samples", succ, n)
	}
	if succ > 0 && totalQ/succ > 20 {
		t.Errorf("average queries %d, expected few", totalQ/succ)
	}
}

func TestAEsPreserveFunctionality(t *testing.T) {
	fixtures(t)
	cfg := DefaultConfig(known(t, "MalConv"), donors)
	cfg.Seed = 2
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	nf := 4
	if nf > len(victims) {
		nf = len(victims)
	}
	for _, v := range victims[:nf] {
		res, err := atk.Attack(v.Raw, &CountingOracle{Oracle: DetectorOracle{D: malconv}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			continue
		}
		ok, err := sandbox.BehaviourPreserved(v.Raw, res.AE)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if !ok {
			t.Errorf("%s: AE does not preserve behaviour", v.Name)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no successful AE to verify")
	}
}

func TestAttackAgainstLightGBM(t *testing.T) {
	// LightGBM is never a known model (not differentiable); the attack runs
	// in pure transfer mode against it.
	fixtures(t)
	cfg := DefaultConfig(known(t, ""), donors) // all three conv models known
	cfg.Seed = 3
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	nl := 4
	if nl > len(victims) {
		nl = len(victims)
	}
	for _, v := range victims[:nl] {
		res, err := atk.Attack(v.Raw, &CountingOracle{Oracle: DetectorOracle{D: lgbm}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Success {
			succ++
		}
	}
	if succ == 0 {
		t.Error("no transfer success against LightGBM")
	}
}

func TestRandomFillSkipOptimize(t *testing.T) {
	fixtures(t)
	cfg := DefaultConfig(nil, nil)
	cfg.Fill = FillRandom
	cfg.SkipOptimize = true
	cfg.MaxQueries = 1
	cfg.Seed = 4
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := victims[0]
	ae, err := atk.buildCandidate(v.Raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sandbox.BehaviourPreserved(v.Raw, ae)
	if err != nil || !ok {
		t.Errorf("random-fill candidate broken: ok=%v err=%v", ok, err)
	}
}

func TestOtherSecLeavesCodeAndDataIntact(t *testing.T) {
	fixtures(t)
	cfg := DefaultConfig(known(t, "MalConv"), donors)
	cfg.CriticalSections = []string{".rdata", ".idata"}
	cfg.Seed = 5
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := victims[0]
	ae, err := atk.buildCandidate(v.Raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := pefile.Parse(v.Raw)
	mod, err := pefile.Parse(ae)
	if err != nil {
		t.Fatal(err)
	}
	ot := orig.SectionByName(".text")
	mt := mod.SectionByName(".text")
	for i := range ot.Data {
		if ot.Data[i] != mt.Data[i] {
			t.Fatalf("Other-sec attack modified .text at %d", i)
		}
	}
	ok, err := sandbox.BehaviourPreserved(v.Raw, ae)
	if err != nil || !ok {
		t.Errorf("other-sec candidate broken: ok=%v err=%v", ok, err)
	}
}

func TestTailOverlayMode(t *testing.T) {
	fixtures(t)
	cfg := DefaultConfig(known(t, "MalConv"), donors)
	cfg.Tail = TailOverlay
	cfg.Seed = 6
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := victims[0]
	ae, err := atk.buildCandidate(v.Raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pefile.Parse(ae)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Overlay) < cfg.TailLen {
		t.Errorf("overlay = %d bytes, want >= %d", len(f.Overlay), cfg.TailLen)
	}
	ok, err := sandbox.BehaviourPreserved(v.Raw, ae)
	if err != nil || !ok {
		t.Errorf("overlay candidate broken: ok=%v err=%v", ok, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxQueries: 0}); err != ErrNoBudget {
		t.Errorf("zero budget: err = %v", err)
	}
	if _, err := New(Config{MaxQueries: 10, Fill: FillDonor}); err != ErrNoDonors {
		t.Errorf("no donors: err = %v", err)
	}
	if _, err := New(Config{MaxQueries: 10, Fill: FillRandom}); err != nil {
		t.Errorf("random fill without donors should be fine: %v", err)
	}
}

func TestQueryBudgetRespected(t *testing.T) {
	fixtures(t)
	// An oracle that always detects forces the attack to exhaust budget.
	always := oracleFunc{name: "always", fn: func([]byte) bool { return true }}
	cfg := DefaultConfig(nil, donors)
	cfg.MaxQueries = 7
	cfg.SkipOptimize = true
	cfg.Seed = 7
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Attack(victims[0].Raw, always)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("attack succeeded against an always-detect oracle")
	}
	if res.Queries != 7 {
		t.Errorf("queries = %d, want 7", res.Queries)
	}
}

type oracleFunc struct {
	name string
	fn   func([]byte) bool
}

func (o oracleFunc) Name() string             { return o.name }
func (o oracleFunc) Detected(raw []byte) bool { return o.fn(raw) }

func TestHeaderEditsApplied(t *testing.T) {
	fixtures(t)
	cfg := DefaultConfig(nil, donors)
	cfg.SkipOptimize = true
	cfg.Seed = 8
	atk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := victims[0]
	ae, err := atk.buildCandidate(v.Raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := pefile.Parse(v.Raw)
	mod, _ := pefile.Parse(ae)
	if orig.FileHeader.TimeDateStamp == mod.FileHeader.TimeDateStamp {
		t.Error("timestamp unchanged")
	}
	standard := []string{".reloc", ".bss", ".tls", ".edata", ".pdata", ".xdata", ".didat", ".crt"}
	found := false
	for _, name := range standard {
		if mod.SectionByName(name) != nil {
			found = true
		}
	}
	if !found {
		t.Error("stub not renamed to a standard section name")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	fixtures(t)
	build := func() []byte {
		cfg := DefaultConfig(nil, donors)
		cfg.SkipOptimize = true
		cfg.Seed = 99
		atk, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ae, err := atk.buildCandidate(victims[0].Raw, 0)
		if err != nil {
			t.Fatal(err)
		}
		return ae
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic candidate size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic candidate bytes")
		}
	}
}
