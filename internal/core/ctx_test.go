package core

import (
	"context"
	"errors"
	"testing"

	"mpass/internal/corpus"
)

// ctxAttacker builds a lightweight Attacker (random fill, no optimization)
// so cancellation tests exercise the query loop without training models.
func ctxAttacker(t *testing.T) (*Attacker, []byte) {
	t.Helper()
	atk, err := New(Config{
		MaxQueries:   50,
		Shuffle:      true,
		HeaderEdits:  true,
		Tail:         TailSection,
		TailLen:      64,
		Fill:         FillRandom,
		SkipOptimize: true,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return atk, corpus.NewGenerator(123).Sample(corpus.Malware).Raw
}

// scriptedOracle is a ContextOracle that always answers "detected" until a
// scripted query index errors or triggers a cancellation.
type scriptedOracle struct {
	calls    int
	failAt   int // 1-based query index that starts returning failErr
	failErr  error
	cancelAt int // 1-based query index that fires cancel
	cancel   context.CancelFunc
}

func (o *scriptedOracle) Name() string         { return "scripted" }
func (o *scriptedOracle) Detected([]byte) bool { o.calls++; return true }

func (o *scriptedOracle) DetectedContext(ctx context.Context, raw []byte) (bool, error) {
	o.calls++
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if o.cancelAt > 0 && o.calls == o.cancelAt {
		o.cancel()
	}
	if o.failAt > 0 && o.calls >= o.failAt {
		return false, o.failErr
	}
	return true, nil
}

func TestAttackContextPropagatesOracleError(t *testing.T) {
	atk, raw := ctxAttacker(t)
	sentinel := errors.New("oracle offline")
	o := &scriptedOracle{failAt: 3, failErr: sentinel}
	res, err := atk.AttackContext(context.Background(), raw, o)
	if !errors.Is(err, sentinel) {
		t.Fatalf("AttackContext error = %v, want wrapped %v", err, sentinel)
	}
	if res == nil || res.Success {
		t.Fatalf("partial result = %+v, want unsuccessful partial", res)
	}
	if res.Queries != 3 {
		t.Fatalf("partial result counted %d queries, want 3 (budget spent before the failure)", res.Queries)
	}
}

func TestAttackContextCancelledMidAttack(t *testing.T) {
	atk, raw := ctxAttacker(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := &scriptedOracle{cancelAt: 2, cancel: cancel}
	res, err := atk.AttackContext(ctx, raw, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AttackContext error = %v, want context.Canceled", err)
	}
	// The cancel fires during query 2; the loop stops at the next round top.
	if res.Queries != 2 {
		t.Fatalf("partial result counted %d queries, want 2", res.Queries)
	}
}

func TestAttackContextPreCancelled(t *testing.T) {
	atk, raw := ctxAttacker(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := &scriptedOracle{}
	res, err := atk.AttackContext(ctx, raw, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AttackContext error = %v, want context.Canceled", err)
	}
	if res.Queries != 0 || o.calls != 0 {
		t.Fatalf("pre-cancelled attack still queried: res=%d oracle=%d", res.Queries, o.calls)
	}
}

// plainOracle is a context-free Oracle; QueryOracle must still respect an
// already-expired context without invoking it.
type plainOracle struct{ calls int }

func (o *plainOracle) Name() string         { return "plain" }
func (o *plainOracle) Detected([]byte) bool { o.calls++; return false }

func TestQueryOraclePlainRespectsExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := &plainOracle{}
	if _, err := QueryOracle(ctx, o, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryOracle = %v, want context.Canceled", err)
	}
	if o.calls != 0 {
		t.Fatal("expired context still reached the oracle")
	}

	det, err := QueryOracle(context.Background(), o, []byte("x"))
	if err != nil || det {
		t.Fatalf("QueryOracle = (%v, %v), want (false, nil)", det, err)
	}
	if o.calls != 1 {
		t.Fatalf("oracle called %d times, want 1", o.calls)
	}
}

func TestCountingOracleContextPassthrough(t *testing.T) {
	inner := &scriptedOracle{}
	c := &CountingOracle{Oracle: inner}
	det, err := c.DetectedContext(context.Background(), []byte("x"))
	if err != nil || !det {
		t.Fatalf("DetectedContext = (%v, %v), want (true, nil)", det, err)
	}
	if c.Queries != 1 || inner.calls != 1 {
		t.Fatalf("queries counted %d/%d, want 1/1", c.Queries, inner.calls)
	}

	// Wrapping a plain Oracle still works and still counts.
	p := &plainOracle{}
	cp := &CountingOracle{Oracle: p}
	if det, err := cp.DetectedContext(context.Background(), []byte("x")); err != nil || det {
		t.Fatalf("DetectedContext over plain oracle = (%v, %v), want (false, nil)", det, err)
	}
	if cp.Queries != 1 || p.calls != 1 {
		t.Fatalf("plain passthrough counted %d/%d, want 1/1", cp.Queries, p.calls)
	}
}
