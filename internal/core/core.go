// Package core implements the MPass attack (§III): a hard-label black-box
// adversarial attack on ML-based static malware detectors.
//
// One attack round follows Figure 1 of the paper:
//
//  1. Modify the malware: encode the PEM-critical sections (code and data)
//     behind a runtime-recovery stub filled from a randomly selected benign
//     donor, shuffle the stub instructions, add a tail perturbation section
//     (or overlay), and edit functionality-neutral header fields.
//  2. Optimize the perturbation against the ensemble of known models:
//     positions in the optimizable set I are lifted to each model's byte
//     embedding space, moved along the negative ensemble gradient of
//     Eq. 3, and mapped back to discrete bytes; every encoded byte's
//     recovery key moves in lock-step, realizing the mask matrix M and
//     tuple corpus J of Eq. 2 so functionality is preserved by
//     construction.
//  3. Query the hard-label target once. On detection, re-randomize (new
//     donor, new shuffle) and repeat until bypass or the query budget.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mpass/internal/detect"
	"mpass/internal/nn"
	"mpass/internal/pefile"
	"mpass/internal/recovery"
	"mpass/internal/tensor"
)

// Oracle is the hard-label black-box target: one bit per query.
type Oracle interface {
	Name() string
	// Detected returns true when the submitted bytes are flagged malicious.
	Detected(raw []byte) bool
}

// ContextOracle is an Oracle whose queries honor cancellation and can fail.
// Remote or resident oracles (the serving layer, fault-injected wrappers)
// implement it so a stalled or erroring target surfaces as a prompt error
// instead of a silent hang; QueryOracle routes through it when available.
type ContextOracle interface {
	Oracle
	// DetectedContext is Detected bounded by ctx: it returns ctx.Err() when
	// the caller's deadline expires or the attack is cancelled mid-query,
	// and a non-nil error when the oracle itself cannot answer.
	DetectedContext(ctx context.Context, raw []byte) (bool, error)
}

// QueryOracle performs one hard-label query, routing through DetectedContext
// when the oracle honors cancellation. For a plain Oracle the query itself
// cannot be interrupted, but an already-expired context is still respected
// so cancelled attacks stop before the next query rather than mid-flight.
func QueryOracle(ctx context.Context, o Oracle, raw []byte) (bool, error) {
	if co, ok := o.(ContextOracle); ok {
		return co.DetectedContext(ctx, raw)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return o.Detected(raw), nil
}

// ModelVersioner is implemented by oracles that can report which model
// generation is answering their queries — the serving layer's resident
// oracle, whose backing model set can be hot-swapped mid-attack.
type ModelVersioner interface {
	ModelVersion() string
}

// OracleUnwrapper is implemented by wrapper oracles (query counters, retry
// layers, fault injectors); capability probes look through it.
type OracleUnwrapper interface {
	UnwrapOracle() Oracle
}

// OracleModelVersion walks o's wrapper chain for a ModelVersioner and
// returns its version, or "" when no layer knows one. Attack bookkeeping
// uses it to record the generation a finished job's oracle ended on.
func OracleModelVersion(o Oracle) string {
	for o != nil {
		if v, ok := o.(ModelVersioner); ok {
			return v.ModelVersion()
		}
		u, ok := o.(OracleUnwrapper)
		if !ok {
			return ""
		}
		o = u.UnwrapOracle()
	}
	return ""
}

// DetectorOracle adapts any detect.Detector into an Oracle.
type DetectorOracle struct{ D detect.Detector }

// Name implements Oracle.
func (o DetectorOracle) Name() string { return o.D.Name() }

// Detected implements Oracle.
func (o DetectorOracle) Detected(raw []byte) bool { return o.D.Label(raw) }

// CountingOracle wraps an Oracle and counts queries — the AVQ bookkeeping.
type CountingOracle struct {
	Oracle
	Queries int
}

// UnwrapOracle implements OracleUnwrapper.
func (c *CountingOracle) UnwrapOracle() Oracle { return c.Oracle }

// Detected implements Oracle, incrementing the query counter.
func (c *CountingOracle) Detected(raw []byte) bool {
	c.Queries++
	return c.Oracle.Detected(raw)
}

// DetectedContext implements ContextOracle, incrementing the query counter
// and delegating to the wrapped oracle's context-aware path when it has one.
func (c *CountingOracle) DetectedContext(ctx context.Context, raw []byte) (bool, error) {
	c.Queries++
	if co, ok := c.Oracle.(ContextOracle); ok {
		return co.DetectedContext(ctx, raw)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return c.Oracle.Detected(raw), nil
}

// TailMode selects where the extra perturbation area lives (Figure 2: blue
// new section vs purple overlay append).
type TailMode int

const (
	// TailSection adds a fresh section at the end of the section table.
	TailSection TailMode = iota
	// TailOverlay appends raw bytes past the last section instead.
	TailOverlay
	// TailNone adds no extra perturbation area.
	TailNone
)

// FillMode selects the initial perturbation content.
type FillMode int

const (
	// FillDonor uses bytes from a randomly selected benign donor program —
	// the paper's initialization.
	FillDonor FillMode = iota
	// FillRandom uses uniform random bytes (the Table VI ablation).
	FillRandom
)

// Config parameterizes an Attacker.
type Config struct {
	// Known is the ensemble of differentiable known models (the paper
	// excludes LightGBM here, footnote 6).
	Known []detect.GradientModel
	// Donors are benign programs used for initial perturbations.
	Donors [][]byte
	// CriticalSections names the sections to encode via runtime recovery.
	// Empty selects every code and initialized-data section, matching the
	// PEM finding that code and data dominate.
	CriticalSections []string
	// MaxQueries is the hard-label query budget per sample (paper: 100).
	MaxQueries int
	// Iterations is γ, the optimization steps per round (paper: 50).
	Iterations int
	// PositionsPerIter bounds how many byte positions move per step.
	PositionsPerIter int
	// Shuffle enables the stub shuffle strategy.
	Shuffle bool
	// HeaderEdits enables timestamp/section-name perturbations.
	HeaderEdits bool
	// Tail selects the extra perturbation area.
	Tail TailMode
	// TailLen is the tail area size in bytes.
	TailLen int
	// Fill selects donor-based or random initialization.
	Fill FillMode
	// SkipOptimize disables step 2 entirely (random-data ablation).
	SkipOptimize bool
	// Seed drives all attack randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's hyperparameters.
func DefaultConfig(known []detect.GradientModel, donors [][]byte) Config {
	return Config{
		Known:            known,
		Donors:           donors,
		MaxQueries:       100,
		Iterations:       50,
		PositionsPerIter: 1024,
		Shuffle:          true,
		HeaderEdits:      true,
		Tail:             TailSection,
		TailLen:          512,
		Fill:             FillDonor,
	}
}

// Result reports one attack run.
type Result struct {
	Success bool
	AE      []byte // the adversarial example (valid PE), nil on failure
	Queries int
	Rounds  int
}

// Attacker runs MPass attacks with a fixed configuration.
type Attacker struct {
	cfg Config
	rng *rand.Rand
}

// Errors returned by Attack.
var (
	ErrNoDonors = errors.New("core: donor-fill attack needs at least one donor")
	ErrNoBudget = errors.New("core: query budget must be positive")
)

// New validates the configuration and returns an Attacker.
func New(cfg Config) (*Attacker, error) {
	if cfg.MaxQueries <= 0 {
		return nil, ErrNoBudget
	}
	if cfg.Fill == FillDonor && len(cfg.Donors) == 0 {
		return nil, ErrNoDonors
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 50
	}
	if cfg.PositionsPerIter <= 0 {
		cfg.PositionsPerIter = 1024
	}
	if cfg.TailLen <= 0 {
		cfg.TailLen = 512
	}
	return &Attacker{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Attack generates an adversarial example for the original malware bytes
// against the hard-label target. It is AttackContext without a deadline.
func (a *Attacker) Attack(original []byte, target Oracle) (*Result, error) {
	return a.AttackContext(context.Background(), original, target)
}

// AttackContext is Attack bounded by ctx: cancellation is checked before
// every round and threaded into each oracle query (honored whenever the
// target implements ContextOracle). On cancellation or an oracle failure it
// returns the partial Result — queries and rounds spent so far — alongside
// the error, so callers can account for the budget an aborted attack burned.
func (a *Attacker) AttackContext(ctx context.Context, original []byte, target Oracle) (*Result, error) {
	res := &Result{}
	for res.Queries < a.cfg.MaxQueries {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Rounds++
		// The tail perturbation area escalates across failed rounds: if
		// content-level evasion alone does not flip the target, more benign
		// context is appended — the same channel the paper's "new section"
		// position provides (APR is only accounted for successful AEs).
		tailLen := a.cfg.TailLen * (1 + (res.Rounds-1)/2)
		if tailLen > 24*a.cfg.TailLen {
			tailLen = 24 * a.cfg.TailLen
		}
		ae, err := a.buildCandidate(original, tailLen)
		if err != nil {
			return nil, fmt.Errorf("core: round %d: %w", res.Rounds, err)
		}
		res.Queries++
		detected, err := QueryOracle(ctx, target, ae)
		if err != nil {
			return res, fmt.Errorf("core: round %d: oracle query: %w", res.Rounds, err)
		}
		if !detected {
			res.Success = true
			res.AE = ae
			return res, nil
		}
	}
	return res, nil
}

// buildCandidate runs steps 1–2 of the round: modification + optimization.
func (a *Attacker) buildCandidate(original []byte, tailLen int) ([]byte, error) {
	if tailLen <= 0 {
		tailLen = a.cfg.TailLen
	}
	f, err := pefile.Parse(original)
	if err != nil {
		return nil, err
	}

	fill := a.fillFunc(f)
	lay, err := recovery.Build(f, recovery.Options{
		Sections: a.criticalSections(f),
		Fill:     fill,
		Shuffle:  a.cfg.Shuffle,
		Rng:      a.rng,
	})
	if err != nil {
		return nil, err
	}

	// Extra perturbation area (Figure 2 blue/purple regions).
	var tailSection string
	switch a.cfg.Tail {
	case TailSection:
		tailSection = freeSectionName(f, a.rng)
		if _, err := f.AddSection(tailSection, fill(tailSection, tailLen), pefile.SecCharacteristicsRsrc); err != nil {
			return nil, err
		}
	case TailOverlay:
		f.AppendOverlay(fill("", tailLen))
	}

	// Header edits (grey region): timestamp and the stub section's name.
	if a.cfg.HeaderEdits {
		f.SetTimestamp(uint32(a.rng.Int31()))
		if name := freeStandardName(f, a.rng); name != "" {
			// Renaming the stub to an unused toolchain-standard name keeps
			// the section table looking mundane; the choice is randomized
			// so the rename itself is not a constant artifact.
			if err := f.RenameSection(lay.StubSection, name); err != nil {
				return nil, err
			}
			lay.StubSection = name
		}
	}

	f.Layout()
	raw := f.Bytes()
	if a.cfg.SkipOptimize || len(a.cfg.Known) == 0 {
		return raw, nil
	}

	positions, keyOf := a.optimizablePositions(f, lay, tailSection, len(raw))
	a.optimize(raw, positions, keyOf)
	return raw, nil
}

// criticalSections maps the configured critical-section names onto the
// sample, defaulting to all code and initialized-data sections.
func (a *Attacker) criticalSections(f *pefile.File) []string {
	if len(a.cfg.CriticalSections) > 0 {
		var present []string
		for _, name := range a.cfg.CriticalSections {
			if f.SectionByName(name) != nil {
				present = append(present, name)
			}
		}
		return present
	}
	var out []string
	for _, s := range f.Sections {
		if s.IsCode() || s.Characteristics&pefile.SecInitializedData != 0 {
			out = append(out, s.Name)
		}
	}
	return out
}

// fillFunc returns the initial-perturbation source for this round. Donor
// fill is class-aware — code sections receive bytes from the donors' code
// sections, everything else from their data sections — so the modified
// sample keeps a benign per-section byte profile (a code section full of
// string data is itself an anomaly feature detectors notice).
//
// It interleaves variable-length chunks from a handful of randomly chosen
// donors at random offsets: with the paper's 50,000-donor pool every AE's
// filler is unique by construction, and chunk mixing reproduces that
// pairwise uniqueness at this repository's pool sizes (no two AEs share a
// long filler run an adaptive AV could mine as a signature). Long zero
// runs are capped: a zero fill would make the recovery key the byte-wise
// negation of the covered malware content, and family-shared literals
// would then leak as identical key runs across AEs.
func (a *Attacker) fillFunc(f *pefile.File) recovery.FillFunc {
	if a.cfg.Fill == FillRandom {
		return func(_ string, n int) []byte {
			b := make([]byte, n)
			a.rng.Read(b)
			return b
		}
	}
	nd := 3
	if nd > len(a.cfg.Donors) {
		nd = len(a.cfg.Donors)
	}
	var codeParts, dataParts [][]byte
	byName := make(map[string][][]byte)
	for i := 0; i < nd; i++ {
		donor := a.cfg.Donors[a.rng.Intn(len(a.cfg.Donors))]
		df, err := pefile.Parse(donor)
		if err != nil {
			// Non-PE donor content is still usable, typed as data.
			dataParts = append(dataParts, donor)
			continue
		}
		for _, sec := range df.Sections {
			if len(sec.Data) == 0 {
				continue
			}
			byName[sec.Name] = append(byName[sec.Name], sec.Data)
			if sec.IsCode() {
				codeParts = append(codeParts, sec.Data)
			} else {
				dataParts = append(dataParts, sec.Data)
			}
		}
	}
	if len(codeParts) == 0 {
		codeParts = dataParts
	}
	if len(dataParts) == 0 {
		dataParts = codeParts
	}
	codeFill := a.newChunkFiller(codeParts)
	dataFill := a.newChunkFiller(dataParts)
	// Same-named donor sections give the closest byte profile (benign
	// .data content for the victim's .data, and so on); class-matched
	// content is the fallback.
	named := make(map[string]func(int) []byte)
	return func(section string, n int) []byte {
		if section == "" { // recovery stub filler: executable context
			return codeFill(n)
		}
		if parts, ok := byName[section]; ok {
			fn, ok2 := named[section]
			if !ok2 {
				fn = a.newChunkFiller(parts)
				named[section] = fn
			}
			return fn(n)
		}
		if sec := f.SectionByName(section); sec != nil && sec.IsCode() {
			return codeFill(n)
		}
		return dataFill(n)
	}
}

// newChunkFiller draws 24–71-byte chunks from the given content parts with
// zero runs capped at twelve bytes — short enough that a 24-byte mining
// window over a zero run always includes at least 12 bytes of AE-unique
// content, long enough to keep the fill's zero mass (and so its entropy
// profile) close to genuine benign sections.
func (a *Attacker) newChunkFiller(parts [][]byte) func(n int) []byte {
	cur := parts[a.rng.Intn(len(parts))]
	cursor := a.rng.Intn(len(cur))
	left := 24 + a.rng.Intn(48)
	zeroRun := 0
	return func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			if left == 0 {
				cur = parts[a.rng.Intn(len(parts))]
				cursor = a.rng.Intn(len(cur))
				left = 24 + a.rng.Intn(48)
			}
			b := cur[cursor%len(cur)]
			if b == 0 {
				zeroRun++
				if zeroRun >= 12 {
					// Hop to a fresh, content-bearing position so runs
					// never extend past the cap.
					for tries := 0; tries < 32; tries++ {
						cursor = a.rng.Intn(len(cur))
						if cur[cursor%len(cur)] != 0 {
							break
						}
					}
					b = cur[cursor%len(cur)]
					zeroRun = 0
				}
			} else {
				zeroRun = 0
			}
			out[i] = b
			cursor++
			left--
		}
		return out
	}
}

// freeSectionName returns a random unused section name.
func freeSectionName(f *pefile.File, rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for {
		b := []byte{'.', 0, 0, 0}
		for i := 1; i < len(b); i++ {
			b[i] = letters[rng.Intn(len(letters))]
		}
		if f.SectionByName(string(b)) == nil {
			return string(b)
		}
	}
}

// freeStandardName returns a random standard toolchain section name not yet
// used in the file, or "".
func freeStandardName(f *pefile.File, rng *rand.Rand) string {
	names := []string{".reloc", ".bss", ".tls", ".edata", ".pdata", ".xdata", ".didat", ".crt"}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	for _, name := range names {
		if f.SectionByName(name) == nil {
			return name
		}
	}
	return ""
}

// optimizablePositions collects the file offsets the optimizer may write
// (the set I) and the byte→key coupling (the tuple corpus J), both in file
// offsets of the serialized image.
func (a *Attacker) optimizablePositions(f *pefile.File, lay *recovery.Layout, tailSection string, rawLen int) (positions []int, keyOf map[int]int) {
	keyOf = make(map[int]int)
	vaOff := func(va uint32) (int, bool) {
		off, ok := f.RVAToOffset(va)
		return int(off), ok
	}
	for _, r := range lay.Regions {
		base, ok1 := vaOff(r.VA)
		keyBase, ok2 := vaOff(r.KeyVA)
		if !ok1 || !ok2 {
			continue
		}
		for i := 0; i < r.Len; i++ {
			positions = append(positions, base+i)
			keyOf[base+i] = keyBase + i
		}
	}
	for _, g := range lay.Gaps {
		base, ok := vaOff(g.VA)
		if !ok {
			continue
		}
		for i := 0; i < g.Len; i++ {
			positions = append(positions, base+i)
		}
	}
	if tailSection != "" {
		if s := f.SectionByName(tailSection); s != nil {
			base := int(s.PointerToRawData)
			for i := 0; i < len(s.Data); i++ {
				positions = append(positions, base+i)
			}
		}
	}
	if a.cfg.Tail == TailOverlay {
		f.Layout()
		start := f.Size() - len(f.Overlay)
		for i := start; i < rawLen; i++ {
			positions = append(positions, i)
		}
	}
	return positions, keyOf
}

// optimize runs the embedding-space transfer optimization (Eq. 3) in place
// on raw. Each iteration computes the summed input gradient over the known
// models, ranks the optimizable positions by gradient mass, and replaces
// the byte at each selected position with the byte whose embedding minimizes
// the linearized ensemble loss; coupled recovery keys shift by the same
// delta (Eq. 2's M matrix), so the candidate stays function-preserving.
func (a *Attacker) optimize(raw []byte, positions []int, keyOf map[int]int) {
	models := a.cfg.Known
	gs := make([]modelGrad, len(models))
	igs := make([]*nn.InputGrad, len(models))
	releaseGrads := func() {
		for i, ig := range igs {
			if ig != nil {
				ig.Release()
				igs[i] = nil
			}
		}
	}
	defer releaseGrads()
	for iter := 0; iter < a.cfg.Iterations; iter++ {
		releaseGrads() // previous iteration's gradients are spent
		bypassAll := true
		for mi, m := range models {
			ig := m.InputGradient(raw, 0)
			igs[mi] = ig
			gs[mi] = modelGrad{g: ig.Grad, dim: m.EmbedDim(), seqLen: m.SeqLen()}
			if ig.Score >= 0.5 {
				bypassAll = false
			}
		}
		if bypassAll {
			return // every known model already says benign
		}

		// Rank positions by total gradient mass across the ensemble.
		ranked := make([]posMass, 0, len(positions))
		for _, p := range positions {
			var mass float64
			for mi := range gs {
				if p >= gs[mi].seqLen {
					continue
				}
				d := gs[mi].dim
				for _, v := range gs[mi].g[p*d : (p+1)*d] {
					mass += v * v
				}
			}
			if mass > 0 {
				ranked = append(ranked, posMass{pos: p, mass: mass})
			}
		}
		if len(ranked) == 0 {
			return // perturbable area is outside every model's window
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].mass > ranked[j].mass })
		if len(ranked) > a.cfg.PositionsPerIter {
			ranked = ranked[:a.cfg.PositionsPerIter]
		}

		changed := false
		scores := make(tensor.Vec, 256)
		perModel := make(tensor.Vec, 256)
		for _, pm := range ranked {
			p := pm.pos
			// All 256 candidate scores at once: per model, one 256×D mat-vec
			// of the embedding table against the gradient segment, summed
			// across the ensemble. Bit-identical to (and much cheaper than)
			// 256 separate byteScore calls — multiplication commutes and the
			// per-byte accumulation order is unchanged.
			scores.Zero()
			for mi, m := range models {
				if p >= gs[mi].seqLen {
					continue
				}
				d := gs[mi].dim
				m.EmbedMatrix().MatVecInto(gs[mi].g[p*d:(p+1)*d], perModel)
				for b := range scores {
					scores[b] += perModel[b]
				}
			}
			// Choose uniformly among the near-optimal bytes rather than the
			// strict argmin: a deterministic argmin makes independent AEs
			// converge to identical "maximally benign" byte runs, which an
			// adaptive AV could mine as a signature. The tolerance keeps
			// the linearized loss within a whisker of optimal.
			best := 0
			for b := 1; b < 256; b++ {
				if scores[b] < scores[best] {
					best = b
				}
			}
			cur := scores[raw[p]]
			if scores[best] >= cur {
				continue // current byte is already optimal
			}
			tol := (cur - scores[best]) * 0.05
			var cands []byte
			for b := 0; b < 256; b++ {
				if scores[b] <= scores[best]+tol {
					cands = append(cands, byte(b))
				}
			}
			pick := cands[a.rng.Intn(len(cands))]
			if pick != raw[p] {
				delta := pick - raw[p]
				raw[p] = pick
				if k, ok := keyOf[p]; ok {
					raw[k] += delta // keep x = b − k invariant
				}
				changed = true
			}
		}
		if !changed {
			return // linearization has converged
		}
	}
}

// modelGrad caches one known model's input gradient for an iteration.
type modelGrad struct {
	g      []float64
	dim    int
	seqLen int
}

// posMass ranks a byte position by its ensemble gradient mass.
type posMass struct {
	pos  int
	mass float64
}

// byteScore is the linearized ensemble loss of placing byte b at position
// p: Σ_m <∇_m[p], embed_m[b]>. Minimizing it over b is the paper's
// "map the optimized feature vector back to discrete bytes" step.
//
// optimize computes the same quantity for all 256 bytes with one mat-vec
// per model; this per-byte form is kept as the reference the parity test
// checks the vectorized path against.
func byteScore(gs []modelGrad, models []detect.GradientModel, p int, b byte) float64 {
	var s float64
	for mi, m := range models {
		if p >= gs[mi].seqLen {
			continue
		}
		d := gs[mi].dim
		seg := gs[mi].g[p*d : (p+1)*d]
		row := m.EmbedRow(b)
		for k, v := range seg {
			s += v * row[k]
		}
	}
	return s
}
