#!/bin/sh
# scenario_gate.sh — the multi-tenant serving gate (make scenario-gate).
# Boots a 2-replica mpassd fleet with the scenarios/tenants.json allowlist
# behind mpass-gateway, then:
#
#   1. negative drill: runs the noisy-neighbor scenario with an impossible
#      p99 threshold (-scenario-max-p99 1ns) and requires mpass-load to
#      exit non-zero — proving a threshold violation really fails CI;
#   2. the real run: the noisy-neighbor scenario at its own thresholds —
#      p99, shed rate, per-tenant fairness bound, correctness == 1.0, and
#      Retry-After >= 1 on every 429 — must pass;
#   3. allowlist reload drill: SIGHUP replica 0, then an authenticated
#      burst proving the table survived the reload, and an
#      unauthenticated probe proving 401s still consume nothing.
#
# Emits BenchmarkScenarioNoisyNeighbor on stdout and writes
# $SCENARIO_BENCH_JSON (default BENCH_9.json) on first run (FORCE_BENCH=1
# regenerates).
set -eu

tmp="$(mktemp -d)"
pids=""
cleanup() {
	status=$?
	for p in $pids; do
		if kill -0 "$p" 2>/dev/null; then
			kill "$p" 2>/dev/null || true
			wait "$p" 2>/dev/null || true
		fi
	done
	rm -rf "$tmp"
	exit $status
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mpassd" ./cmd/mpassd
go build -o "$tmp/mpass-gateway" ./cmd/mpass-gateway
go build -o "$tmp/mpass-load" ./cmd/mpass-load

# wait_addr FILE PID: the address file appears once the daemon is bound.
wait_addr() {
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 1200 ]; then
			echo "scenario_gate: $1 never appeared" >&2
			exit 1
		fi
		if ! kill -0 "$2" 2>/dev/null; then
			echo "scenario_gate: daemon for $1 exited before listening" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# Replica 0 trains (small corpus) and persists models.gob; replica 1 loads
# the same file. Both serve the scenarios/tenants.json allowlist.
n=0
replicas=""
for ra in 127.0.0.1:0 127.0.0.1:0; do
	"$tmp/mpassd" -addr "$ra" -addr-file "$tmp/r$n.addr" \
		-models "$tmp/models.gob" -malware 24 -benign 24 \
		-max-queries 40 -tenants scenarios/tenants.json -drain 30s >&2 &
	pid=$!
	pids="$pids $pid"
	wait_addr "$tmp/r$n.addr" "$pid"
	eval "rpid$n=$pid"
	replicas="$replicas$(cat "$tmp/r$n.addr"),"
	n=$((n + 1))
done
replicas="${replicas%,}"

"$tmp/mpass-gateway" -addr 127.0.0.1:0 -addr-file "$tmp/gw.addr" \
	-replicas "$replicas" -health-interval 200ms -drain 30s >&2 &
gwpid=$!
pids="$pids $gwpid"
wait_addr "$tmp/gw.addr" "$gwpid"
gw="$(cat "$tmp/gw.addr")"

bench="$tmp/bench.txt"

# 1. Negative drill: an impossible p99 bound must make the scenario fail.
# If this invocation succeeds, the gate itself is broken — fail loudly.
if "$tmp/mpass-load" -addr "$gw" -scenario scenarios/noisy-neighbor.json \
	-scenario-max-p99 1ns >/dev/null 2>"$tmp/neg.log"; then
	echo "scenario_gate: NEGATIVE DRILL FAILED — impossible threshold did not fail the run" >&2
	exit 1
fi
echo "scenario_gate: negative drill ok (broken threshold exits non-zero)" >&2

# 2. The real run at the scenario's own thresholds.
"$tmp/mpass-load" -addr "$gw" -scenario scenarios/noisy-neighbor.json >"$bench"
cat "$bench"

# 3. Allowlist reload drill: SIGHUP re-reads the file in place; the fleet
# must keep serving authenticated traffic and keep rejecting anonymous
# probes afterwards.
kill -HUP "$rpid0"
sleep 0.3
r0="$(cat "$tmp/r0.addr")"
"$tmp/mpass-load" -addr "$r0" -api-key acme-key-1 \
	-clients 2 -requests 40 -samples 8 -seed 9 >/dev/null
# Anonymous traffic must still be rejected outright (401s make mpass-load
# exit non-zero); if this burst succeeds, auth fell open on reload.
if "$tmp/mpass-load" -addr "$r0" \
	-clients 1 -requests 4 -samples 2 -seed 10 >/dev/null 2>&1; then
	echo "scenario_gate: unauthenticated burst unexpectedly succeeded after reload" >&2
	exit 1
fi
echo "scenario_gate: SIGHUP reload drill ok (auth survives reload)" >&2

# Trajectory file: first run writes it, later runs leave history alone
# unless FORCE_BENCH=1 regenerates in place.
out="${SCENARIO_BENCH_JSON:-BENCH_9.json}"
if [ ! -f "$out" ]; then
	go run ./cmd/benchjson -out "$out" <"$bench" >/dev/null
	echo "scenario_gate: wrote $out" >&2
elif [ -n "${FORCE_BENCH:-}" ]; then
	go run ./cmd/benchjson -force -out "$out" <"$bench" >/dev/null
	echo "scenario_gate: rewrote $out (FORCE_BENCH)" >&2
else
	echo "scenario_gate: $out exists, not overwriting (FORCE_BENCH=1 to regenerate)" >&2
fi

# Graceful drain: gateway first, then replicas.
kill -TERM "$gwpid"; wait "$gwpid"
kill -TERM "$rpid0"; wait "$rpid0"
kill -TERM "$rpid1"; wait "$rpid1"
pids=""
echo "scenario_gate: graceful shutdown ok" >&2
