#!/bin/sh
# serve_cluster.sh — boot a 3-replica mpassd fleet behind mpass-gateway.
# Replica 0 trains the suite once and saves models.gob; the other replicas
# load the same file, so the fleet serves one model version and boots in
# milliseconds after the single training run. No curl: mpass-load does the
# /healthz preflight, the scan burst, and the cluster /metrics checks.
#
#   smoke  CI drill (make cluster-smoke): single-replica baseline burst,
#          then the same burst through the gateway with the shard-affinity
#          checks (per-replica cache-hit ratio, distinct-sample miss
#          bound), then a replica kill drill — SIGKILL one replica and
#          require every scan through the gateway to keep succeeding while
#          the ring re-shards. Emits BenchmarkClusterSingle and
#          BenchmarkClusterGateway lines on stdout, gates the throughput
#          ratio host-awarely, and writes $CLUSTER_BENCH_JSON (default
#          BENCH_6.json) on first run (FORCE_BENCH=1 regenerates).
#   up     quickstart: fixed ports (replicas 9001-9003, gateway 8877),
#          foreground until Ctrl-C.
set -eu

mode="${1:-smoke}"
case "$mode" in
	smoke|up) ;;
	*) echo "usage: $0 [smoke|up]" >&2; exit 2 ;;
esac

tmp="$(mktemp -d)"
pids=""
cleanup() {
	status=$?
	for p in $pids; do
		if kill -0 "$p" 2>/dev/null; then
			kill "$p" 2>/dev/null || true
			wait "$p" 2>/dev/null || true
		fi
	done
	rm -rf "$tmp"
	exit $status
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mpassd" ./cmd/mpassd
go build -o "$tmp/mpass-gateway" ./cmd/mpass-gateway
go build -o "$tmp/mpass-load" ./cmd/mpass-load

if [ "$mode" = up ]; then
	raddrs="127.0.0.1:9001 127.0.0.1:9002 127.0.0.1:9003"
	gwaddr="127.0.0.1:8877"
else
	raddrs="127.0.0.1:0 127.0.0.1:0 127.0.0.1:0"
	gwaddr="127.0.0.1:0"
fi

# wait_addr FILE PID: the address file appears once the daemon is bound.
wait_addr() {
	i=0
	while [ ! -s "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 1200 ]; then
			echo "serve_cluster: $1 never appeared" >&2
			exit 1
		fi
		if ! kill -0 "$2" 2>/dev/null; then
			echo "serve_cluster: daemon for $1 exited before listening" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# Replica 0 trains (small corpus) and persists models.gob; it listens only
# after the save, so waiting for its address also waits for the model file.
n=0
replicas=""
for ra in $raddrs; do
	"$tmp/mpassd" -addr "$ra" -addr-file "$tmp/r$n.addr" \
		-models "$tmp/models.gob" -malware 24 -benign 24 \
		-max-queries 40 -drain 30s >&2 &
	pid=$!
	pids="$pids $pid"
	wait_addr "$tmp/r$n.addr" "$pid"
	eval "rpid$n=$pid"
	replicas="$replicas$(cat "$tmp/r$n.addr"),"
	n=$((n + 1))
done
replicas="${replicas%,}"

# Short probe interval so the smoke's kill drill converges in sub-second
# time; production would keep the 1s default.
"$tmp/mpass-gateway" -addr "$gwaddr" -addr-file "$tmp/gw.addr" \
	-replicas "$replicas" -health-interval 200ms -drain 30s >&2 &
gwpid=$!
pids="$pids $gwpid"
wait_addr "$tmp/gw.addr" "$gwpid"
gw="$(cat "$tmp/gw.addr")"

if [ "$mode" = up ]; then
	echo "serve_cluster: gateway on $gw fronting $replicas (Ctrl-C to stop)" >&2
	wait "$gwpid"
	exit 0
fi

r0="$(cat "$tmp/r0.addr")"
bench="$tmp/bench.txt"

# Baseline: the same burst a single replica absorbs alone. (No pipelines:
# plain sh has no pipefail, and a failed load run must fail the smoke.)
"$tmp/mpass-load" -addr "$r0" -bench-name ClusterSingle \
	-clients 8 -requests 600 -samples 32 -seed 1 >"$bench"

# The fleet: identical burst shape through the gateway (fresh sample seed,
# so the baseline run cannot have pre-warmed any shard), plus attack jobs
# to exercise the {replica}/{id} namespace, plus the affinity checks —
# per-replica cache-hit ratio >= 0.9 and fleet misses near the distinct
# sample count.
"$tmp/mpass-load" -addr "$gw" -cluster -bench-name ClusterGateway \
	-clients 8 -requests 600 -samples 32 -seed 2 -attacks 2 >>"$bench"
cat "$bench"

# Replica kill drill: hard-kill the last replica mid-fleet. Every scan
# routed through the gateway must still succeed — keys of the dead shard
# are retried onto the rebuilt ring's owner, never dropped. The hit-ratio
# floor is lifted for this run (inherited keys cold-miss on their new
# home); the miss bound and zero-failure requirements stay.
kill -KILL "$rpid2"
"$tmp/mpass-load" -addr "$gw" -cluster -min-hit-ratio 0 \
	-bench-name ClusterKillDrill -clients 4 -requests 120 -samples 32 -seed 3 \
	>/dev/null
echo "serve_cluster: kill drill ok (replica loss absorbed, zero failed scans)" >&2

# Host-aware throughput gate. Scale-out needs cores to scale onto: with
# >= 4 CPUs a 3-replica fleet must beat one replica by >= 2.5x; on smaller
# hosts the replicas time-slice the same cores and no physical speedup
# exists, so the gate degrades to a sanity bound that still catches a
# pathological gateway (serialization, lost concurrency).
cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$cpus" -ge 4 ]; then min=2.5; else min=0.2; fi
echo "serve_cluster: gating ClusterSingle->ClusterGateway at >= ${min}x on $cpus CPUs" >&2
go run ./cmd/benchjson -gate "BenchmarkClusterSingle,BenchmarkClusterGateway,$min" \
	<"$bench" >/dev/null

# Trajectory file: first run writes it, later runs leave history alone
# unless FORCE_BENCH=1 regenerates in place.
out="${CLUSTER_BENCH_JSON:-BENCH_6.json}"
if [ ! -f "$out" ]; then
	go run ./cmd/benchjson -out "$out" <"$bench" >/dev/null
	echo "serve_cluster: wrote $out" >&2
elif [ -n "${FORCE_BENCH:-}" ]; then
	go run ./cmd/benchjson -force -out "$out" <"$bench" >/dev/null
	echo "serve_cluster: rewrote $out (FORCE_BENCH)" >&2
else
	echo "serve_cluster: $out exists, not overwriting (FORCE_BENCH=1 to regenerate)" >&2
fi

# Graceful drain of the survivors: gateway first, then replicas.
kill -TERM "$gwpid"; wait "$gwpid"
kill -TERM "$rpid0"; wait "$rpid0"
kill -TERM "$rpid1"; wait "$rpid1"
pids=""
echo "serve_cluster: graceful shutdown ok" >&2
