#!/bin/sh
# serve_bench.sh — boot mpassd on a random port, drive it with mpass-load,
# and shut it down gracefully via SIGTERM. No curl: mpass-load does the
# /healthz preflight and the /metrics cross-check itself.
#
#   smoke  small corpus, short burst, one attack job  (make serve-smoke)
#   bench  bigger burst; stdout is `go test -bench`-style lines for
#          cmd/benchjson                               (make bench-json)
#   faults smoke corpus, attack jobs against a fault-injecting oracle
#          (hangs, transient errors, latency); every job must still reach
#          a terminal state and the SIGTERM drain must stay bounded
#                                                     (make serve-faults)
#   reload smoke corpus persisted as a per-engine envelope directory, then
#          mpass-load -reload swaps model generations mid-burst: every swap
#          must certify and land, every scan must carry a generation the
#          server really served, and /healthz must agree with the last swap
#                                                     (make reload-smoke)
set -eu

mode="${1:-smoke}"
daemonflags=""
loadflags=""
# Legacy monolithic gob by default; the reload mode overrides this with a
# directory so mpassd persists (and reloads) per-engine envelopes instead.
models="models.gob"
case "$mode" in
	smoke)
		mal=24; ben=24; clients=4; requests=120; attacks=1
		# Smoke also covers the quantized serving mode (int32 is the
		# certified <= 1e-6 format) and the O(chunk) streaming scan path:
		# a 2 MiB chunked upload that mpass-load cross-checks against the
		# scans_streamed / streamed_bytes counters.
		daemonflags="-quant int32"
		loadflags="-stream-mb 2"
		;;
	bench)
		mal=40; ben=40; clients=8; requests=600; attacks=0
		loadflags="-stream-mb 4"
		;;
	faults)
		mal=24; ben=24; clients=4; requests=60; attacks=3
		# Hang rate 0.2 exercises the job deadline; error rate 0.3 the
		# retry/breaker ladder; latency 0.3 the ctx-bounded delay path. The
		# short -job-deadline keeps hang-struck jobs (and the drain) fast.
		daemonflags="-fault-hang 0.2 -fault-error 0.3 -fault-latency 0.3 -fault-delay 20ms -job-deadline 10s"
		loadflags="-faults"
		;;
	reload)
		mal=24; ben=24; clients=4; requests=200; attacks=1
		# The model path is a directory, so mpassd persists per-engine
		# envelopes at boot and the reload loader re-reads them — identical
		# bytes, so the drill also proves a same-weights swap is
		# score-invisible. int32 serving makes every swap pass the quant
		# parity certification, not just the health/finite gates.
		models="models"
		daemonflags="-quant int32"
		loadflags="-reload 3 -bench-name ServeReload"
		;;
	*) echo "usage: $0 [smoke|bench|faults|reload]" >&2; exit 2 ;;
esac

tmp="$(mktemp -d)"
pid=
cleanup() {
	status=$?
	if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
		kill "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
	exit $status
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mpassd" ./cmd/mpassd
go build -o "$tmp/mpass-load" ./cmd/mpass-load

# $daemonflags is deliberately unquoted: it is a per-mode flag list
# (quant serving in smoke, fault injection in faults).
# shellcheck disable=SC2086
"$tmp/mpassd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
	-models "$tmp/$models" -malware "$mal" -benign "$ben" \
	-max-queries 40 -drain 30s $daemonflags >&2 &
pid=$!

# The address file appears once training finished and the socket is bound.
i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 1200 ]; then
		echo "serve_bench: mpassd never wrote its address" >&2
		exit 1
	fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "serve_bench: mpassd exited before listening" >&2
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmp/addr")"

# shellcheck disable=SC2086
"$tmp/mpass-load" -addr "$addr" \
	-clients "$clients" -requests "$requests" -attacks "$attacks" $loadflags

# Graceful drain: mpassd exits non-zero if in-flight work failed to finish.
kill -TERM "$pid"
wait "$pid"
pid=
echo "serve_bench: graceful shutdown ok" >&2
