// Quickstart: the smallest end-to-end MPass run.
//
// It generates a tiny synthetic corpus, trains one MalConv detector,
// attacks one detected malware sample with MPass (using two other trained
// models as the known ensemble), and verifies in the sandbox that the
// adversarial example still performs the original malicious behaviour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/sandbox"
)

func main() {
	log.SetFlags(0)

	// 1. Corpus: synthetic PE malware and benign programs (the repo's
	// substitute for VirusTotal/VirusShare samples).
	ds := corpus.MakeAugmentedDataset(1, 30, 30, 0.75)
	fmt.Printf("corpus: %d train / %d test samples\n", len(ds.Train), len(ds.Test))

	// 2. Detectors: the black-box target plus two known models.
	cfg := detect.DefaultTrainConfig()
	malconv, err := detect.TrainMalConv(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	nonneg, err := detect.TrainNonNeg(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	malgcg, err := detect.TrainMalGCG(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MalConv test accuracy: %.0f%%\n", 100*detect.Accuracy(malconv, ds.Test))

	// 3. Pick a victim the target currently detects.
	victims := detect.DetectedMalware(malconv, ds.Test)
	if len(victims) == 0 {
		log.Fatal("no detected malware in the test split")
	}
	victim := victims[0]
	fmt.Printf("victim: %s (%d bytes), MalConv score %.3f\n",
		victim.Name, len(victim.Raw), malconv.Score(victim.Raw))

	// 4. Benign donors for the initial perturbations.
	g := corpus.NewGenerator(999)
	var donors [][]byte
	for i := 0; i < 16; i++ {
		donors = append(donors, g.Sample(corpus.Benign).Raw)
	}

	// 5. MPass: hard-label black-box attack with the paper's settings.
	acfg := core.DefaultConfig([]detect.GradientModel{nonneg, malgcg}, donors)
	attacker, err := core.New(acfg)
	if err != nil {
		log.Fatal(err)
	}
	oracle := &core.CountingOracle{Oracle: core.DetectorOracle{D: malconv}}
	res, err := attacker.Attack(victim.Raw, oracle)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Success {
		log.Fatalf("attack failed after %d queries", res.Queries)
	}
	fmt.Printf("bypassed MalConv in %d queries; AE score %.3f\n",
		res.Queries, malconv.Score(res.AE))
	fmt.Printf("AE size: %d bytes (APR %.0f%%)\n", len(res.AE),
		100*float64(len(res.AE)-len(victim.Raw))/float64(len(victim.Raw)))

	// 6. Functionality check: the AE must reproduce the original API trace.
	ok, err := sandbox.BehaviourPreserved(victim.Raw, res.AE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("behaviour preserved: %v\n", ok)
}
