// Functionality: the runtime recovery technique and shuffle strategy
// (§III-C) in isolation.
//
// It takes one malware sample, overwrites its code and data sections with
// benign content behind a shuffled recovery stub, and demonstrates in the
// sandbox that (1) the modified program reproduces the original API trace
// bit-for-bit, (2) byte+key coupled edits (the mask M of Eq. 2) stay
// functionality-preserving, and (3) uncoupled edits break the program.
//
//	go run ./examples/functionality
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpass/internal/corpus"
	"mpass/internal/pefile"
	"mpass/internal/recovery"
	"mpass/internal/sandbox"
)

func main() {
	log.SetFlags(0)

	g := corpus.NewGenerator(7)
	malware := g.Sample(corpus.Malware)
	donor := g.Sample(corpus.Benign)

	orig, err := sandbox.Run(malware.Raw)
	if err != nil || !orig.Halted() {
		log.Fatalf("original does not run: %v %v", err, orig.Err)
	}
	fmt.Printf("original: %d bytes, %d API calls, %d VM steps\n",
		len(malware.Raw), len(orig.Trace), orig.Steps)

	// Build the recovery construction with benign fill and the shuffle on.
	f, err := pefile.Parse(malware.Raw)
	if err != nil {
		log.Fatal(err)
	}
	cursor := 0
	fill := func(_ string, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = donor.Raw[cursor%len(donor.Raw)]
			cursor++
		}
		return out
	}
	rng := rand.New(rand.NewSource(42))
	lay, err := recovery.Build(f, recovery.Options{Fill: fill, Shuffle: true, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes across %d sections; stub %q at RVA %#x with %d shuffle gaps (%d filler bytes)\n",
		lay.TotalEncoded(), len(lay.Regions), lay.StubSection, lay.StubVA,
		len(lay.Gaps), lay.TotalGapSpace())

	modified := f.Bytes()
	res, err := sandbox.Run(modified)
	if err != nil || !res.Halted() {
		log.Fatalf("modified does not run: %v %v", err, res.Err)
	}
	fmt.Printf("modified: %d bytes, trace equal to original: %v (stub overhead %d steps)\n",
		len(modified), orig.Trace.Equal(res.Trace), res.Steps-orig.Steps)

	// Coupled mutation: change code bytes AND their keys by the same delta.
	coupling := lay.KeyCoupling()
	keysec := f.SectionByName(lay.KeySection)
	text := f.SectionByName(".text")
	for i := 0; i < 100; i++ {
		va := text.VirtualAddress + uint32(i)
		text.Data[i] += byte(i)
		keysec.Data[coupling[va]-keysec.VirtualAddress] += byte(i)
	}
	ok, err := sandbox.BehaviourPreserved(malware.Raw, f.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 100 coupled byte+key edits: behaviour preserved = %v\n", ok)

	// Uncoupled mutation: change code bytes only — recovery now restores
	// the wrong program.
	for i := 0; i < 100; i++ {
		text.Data[i] ^= 0xA5
	}
	ok, err = sandbox.BehaviourPreserved(malware.Raw, f.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after uncoupled code edits:      behaviour preserved = %v (expected false)\n", ok)
}
