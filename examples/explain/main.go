// Explain: the problem-space explainability method (PEM, §III-B).
//
// Trains the known-model ensemble, computes exact section-level Shapley
// values (Eq. 1) for a handful of malware samples, runs Algorithm 1, and
// prints the per-model ranking plus the common critical sections — which,
// as in the paper, come out as the code and data sections.
//
//	go run ./examples/explain
package main

import (
	"fmt"
	"log"

	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/shapley"
)

func main() {
	log.SetFlags(0)

	ds := corpus.MakeAugmentedDataset(2, 30, 30, 0.75)
	cfg := detect.DefaultTrainConfig()
	malconv, nonneg, lgbm, malgcg, err := detect.TrainAll(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// N randomly sampled malware (Algorithm 1's C).
	var samples [][]byte
	for _, s := range ds.Test {
		if s.Family == corpus.Malware && len(samples) < 5 {
			samples = append(samples, s.Raw)
		}
	}

	models := []shapley.Model{malconv, nonneg, malgcg, lgbm}
	res, err := shapley.PEM(models, samples, shapley.Config{TopH: 10, TopK: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-model mean section Shapley values E_f(phi_i):")
	for _, m := range models {
		fmt.Printf("  %-10s", m.Name())
		for i, sc := range res.PerModel[m.Name()] {
			if i >= 4 {
				break
			}
			fmt.Printf("  %-7s %+.4f", sc.Section, sc.Value)
		}
		fmt.Println()
	}
	fmt.Printf("\ncommon critical sections S~ = %v\n", res.Critical)

	// The paper's quantitative claim: the top-2 sections' values are
	// 1.3-6.0x the 3rd's.
	for _, m := range models {
		r := res.PerModel[m.Name()]
		if len(r) >= 3 && r[2].Value > 1e-9 {
			fmt.Printf("%s: rank2/rank3 value ratio = %.1fx\n",
				m.Name(), r[1].Value/r[2].Value)
		}
	}

	// Per-sample view for one malware: exact Shapley with the efficiency
	// axiom as a sanity check.
	phi, err := shapley.SectionShapley(samples[0], res.Sections, malconv.Score)
	if err != nil {
		log.Fatal(err)
	}
	resid, err := shapley.Efficiency(samples[0], res.Sections, malconv.Score)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample 0 on MalConv: phi = %v\nefficiency residual = %.2e (exact computation)\n", phi, resid)
}
