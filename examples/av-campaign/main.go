// AV campaign: attacking the commercial-AV simulators and surviving their
// learning (§IV-B and §IV-C at example scale).
//
// It attacks each of the five AV simulators with MPass, then runs two
// weekly learning rounds in which the AVs mine byte signatures from every
// submitted AE, and shows that the shuffled, donor-unique MPass AEs keep
// bypassing — while an unshuffled variant of the same attack gets caught.
//
//	go run ./examples/av-campaign
package main

import (
	"fmt"
	"log"

	"mpass/internal/core"
	"mpass/internal/eval"
)

func main() {
	log.SetFlags(0)

	cfg := eval.QuickConfig()
	cfg.Victims = 4
	fmt.Println("setting up suite (detectors + AV simulators)...")
	s, err := eval.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}

	attack := func(shuffle bool, avIdx int) (aes [][]byte) {
		target := s.AVs[avIdx]
		for i, v := range s.Victims {
			acfg := core.DefaultConfig(s.KnownFor(target.Name()), s.MPassDonorPool)
			acfg.Seed = int64(i) * 101
			acfg.Shuffle = shuffle
			atk, err := core.New(acfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := atk.Attack(v.Raw, &core.CountingOracle{Oracle: target})
			if err != nil {
				log.Fatal(err)
			}
			if res.Success {
				aes = append(aes, res.AE)
			}
		}
		return aes
	}

	fmt.Printf("\n%-6s %s\n", "AV", "MPass successes")
	pools := make(map[string][][]byte)
	for i, a := range s.AVs {
		a.ResetSignatures()
		aes := attack(true, i)
		pools[a.Name()] = aes
		fmt.Printf("%-6s %d/%d victims\n", a.Name(), len(aes), len(s.Victims))
	}

	// Weekly learning on AV1: the vendor mines signatures from everything
	// submitted to it.
	target := s.AVs[0]
	shuffled := pools["AV1"]
	unshuffled := attack(false, 0)
	target.ResetSignatures()

	var union [][]byte
	union = append(union, shuffled...)
	union = append(union, unshuffled...)
	bypass := func(pool [][]byte) string {
		if len(pool) == 0 {
			return "n/a"
		}
		pass := 0
		for _, ae := range pool {
			if !target.Detected(ae) {
				pass++
			}
		}
		return fmt.Sprintf("%d/%d", pass, len(pool))
	}

	fmt.Printf("\nAV1 learning (mines %d submitted AEs per round):\n", len(union))
	fmt.Printf("%-8s %12s %14s %12s\n", "round", "shuffled", "unshuffled", "signatures")
	for round := 0; round < 3; round++ {
		if round > 0 {
			target.LearnRound(union, 30)
		}
		fmt.Printf("%-8d %12s %14s %12d\n",
			round, bypass(shuffled), bypass(unshuffled), target.SignatureCount())
	}
	fmt.Println("\nThe fixed recovery-stub loop of the unshuffled variant is minable;")
	fmt.Println("the shuffle strategy breaks every invariant window (§III-C).")
}
