module mpass

go 1.22
