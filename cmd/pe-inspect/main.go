// Command pe-inspect dumps the structure of a PE32 image: headers, section
// table, entropy per section, slack regions, and overlay. With -gen it
// first generates a synthetic corpus sample to inspect, which is the
// quickest way to see what the attack substrate looks like.
//
// Usage:
//
//	pe-inspect file.exe
//	pe-inspect -gen malware -seed 7
//	pe-inspect -gen benign -disasm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpass/internal/corpus"
	"mpass/internal/features"
	"mpass/internal/pefile"
	"mpass/internal/sandbox"
	"mpass/internal/visa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pe-inspect: ")
	gen := flag.String("gen", "", "generate a sample instead of reading a file: 'malware' or 'benign'")
	seed := flag.Int64("seed", 1, "generator seed for -gen")
	disasm := flag.Bool("disasm", false, "disassemble the entry section as VISA-32")
	run := flag.Bool("run", false, "execute the image in the sandbox and print its API trace")
	flag.Parse()

	var raw []byte
	var err error
	switch {
	case *gen == "malware":
		raw = corpus.NewGenerator(*seed).Sample(corpus.Malware).Raw
	case *gen == "benign":
		raw = corpus.NewGenerator(*seed).Sample(corpus.Benign).Raw
	case flag.NArg() == 1:
		raw, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	f, err := pefile.Parse(raw)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	fmt.Printf("file size        %d bytes\n", len(raw))
	fmt.Printf("timestamp        %#x\n", f.FileHeader.TimeDateStamp)
	fmt.Printf("entry point      RVA %#x", f.Optional.AddressOfEntryPoint)
	if s := f.EntrySection(); s != nil {
		fmt.Printf(" (in %s)", s.Name)
	}
	fmt.Println()
	fmt.Printf("image size       %#x\n", f.Optional.SizeOfImage)
	fmt.Printf("sections         %d\n", len(f.Sections))
	fmt.Printf("%-10s %10s %10s %10s %8s %6s\n", "name", "va", "rawoff", "rawsize", "entropy", "flags")
	for _, s := range f.Sections {
		flags := ""
		if s.IsCode() {
			flags += "X"
		}
		if s.Characteristics&pefile.SecMemWrite != 0 {
			flags += "W"
		}
		if s.Characteristics&pefile.SecInitializedData != 0 {
			flags += "D"
		}
		fmt.Printf("%-10s %#10x %#10x %#10x %8.2f %6s\n",
			s.Name, s.VirtualAddress, s.PointerToRawData, s.SizeOfRawData,
			features.Entropy(s.Data), flags)
	}
	for _, sl := range f.SlackRegions() {
		fmt.Printf("slack in %-8s offset %#x len %d\n", sl.Section, sl.Offset, sl.Length)
	}
	if len(f.Overlay) > 0 {
		fmt.Printf("overlay          %d bytes, entropy %.2f\n", len(f.Overlay), features.Entropy(f.Overlay))
	}

	if *disasm {
		s := f.EntrySection()
		if s == nil {
			log.Fatal("no entry section to disassemble")
		}
		fmt.Printf("\ndisassembly of %s:\n", s.Name)
		off := f.Optional.AddressOfEntryPoint - s.VirtualAddress
		for i := 0; i < 40 && int(off)+visa.Size <= len(s.Data); i++ {
			in, err := visa.Decode(s.Data[off:])
			if err != nil {
				fmt.Printf("  %#06x  <undecodable: %v>\n", s.VirtualAddress+off, err)
				break
			}
			fmt.Printf("  %#06x  %s\n", s.VirtualAddress+off, in)
			if in.Op == visa.HALT {
				break
			}
			off += visa.Size
		}
	}

	if *run {
		res, err := sandbox.Run(raw)
		if err != nil {
			log.Fatalf("sandbox: %v", err)
		}
		fmt.Printf("\nsandbox: %d steps, halted=%v\n", res.Steps, res.Halted())
		if res.Err != nil {
			fmt.Printf("fault: %v\n", res.Err)
		}
		fmt.Printf("API trace (%d events):\n", len(res.Trace))
		for i, e := range res.Trace {
			if i >= 25 {
				fmt.Printf("  ... %d more\n", len(res.Trace)-i)
				break
			}
			name := corpus.APIName(e.API)
			if name == "" {
				name = fmt.Sprintf("api_%d", e.API)
			}
			fmt.Printf("  %-28s arg=%#x\n", name, e.Arg)
		}
	}
}
