package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkDetectorPredict-8   \t    1814\t   1545457 ns/op\t   17120 B/op\t       8 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkDetectorPredict" || r.Iterations != 1814 || r.NsPerOp != 1545457 {
		t.Fatalf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 17120 || r.AllocsPerOp == nil || *r.AllocsPerOp != 8 {
		t.Fatalf("memory stats wrong: %+v", r)
	}

	// Custom b.ReportMetric units land in Metrics; sub-benchmark names keep
	// their slash but lose only the trailing -GOMAXPROCS.
	r, ok = parseLine("BenchmarkTrainBatchParallel/workers=4-8  12  9000000 ns/op  1234.5 samples/sec")
	if !ok {
		t.Fatal("sub-benchmark line rejected")
	}
	if r.Name != "BenchmarkTrainBatchParallel/workers=4" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Metrics["samples/sec"] != 1234.5 {
		t.Fatalf("metrics = %v", r.Metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tmpass\t1.2s",
		"",
		"--- FAIL: TestX",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line %q accepted", line)
		}
	}
}

func TestCheckGate(t *testing.T) {
	rep := &Report{Benchmarks: []Result{
		{Name: "BenchmarkFloat", NsPerOp: 400},
		{Name: "BenchmarkQuant", NsPerOp: 250},
	}}

	ratio, err := checkGate(rep, "BenchmarkFloat,BenchmarkQuant,1.3")
	if err != nil {
		t.Fatalf("gate should pass at 1.6x: %v", err)
	}
	if ratio != 1.6 {
		t.Fatalf("ratio = %v, want 1.6", ratio)
	}

	if _, err := checkGate(rep, "BenchmarkFloat,BenchmarkQuant,2.0"); err == nil {
		t.Fatal("gate passed below the required speedup")
	}
	if _, err := checkGate(rep, "BenchmarkFloat,BenchmarkMissing,1.1"); err == nil {
		t.Fatal("gate passed with a missing benchmark")
	}
	for _, bad := range []string{"", "a,b", "a,b,c,d", "a,b,zero", "a,b,-1"} {
		if _, err := checkGate(rep, bad); err == nil {
			t.Fatalf("malformed spec %q accepted", bad)
		}
	}
}
