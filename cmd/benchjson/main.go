// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON report, so CI can diff benchmark runs without
// scraping logs:
//
//	go test -run '^$' -bench 'Predict$' -benchmem . | go run ./cmd/benchjson -out BENCH.json
//
// Each benchmark line ("BenchmarkName-8  1814  1545457 ns/op  17120 B/op
// 8 allocs/op  12.3 custom/metric") becomes one record keyed by the
// benchmark name with the GOMAXPROCS suffix stripped. The three standard
// units get first-class fields; anything else (b.ReportMetric output) lands
// in "metrics". Non-benchmark lines pass through to stderr so failures stay
// visible in the pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one "Benchmark..." output line; ok is false for any
// other line (headers, PASS, ok, failures).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// checkGate enforces a speedup requirement of the form "BASE,NEW,MIN":
// the report must contain benchmarks BASE and NEW, and BASE's ns/op must
// be at least MIN times NEW's. It returns the achieved ratio.
func checkGate(rep *Report, spec string) (float64, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return 0, fmt.Errorf("gate spec %q: want BASE,NEW,MIN", spec)
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || min <= 0 {
		return 0, fmt.Errorf("gate spec %q: bad minimum speedup %q", spec, parts[2])
	}
	find := func(name string) (Result, error) {
		for _, r := range rep.Benchmarks {
			if r.Name == name {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("gate: benchmark %q not in input", name)
	}
	base, err := find(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, err
	}
	next, err := find(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, err
	}
	if next.NsPerOp <= 0 {
		return 0, fmt.Errorf("gate: %s has non-positive ns/op", next.Name)
	}
	ratio := base.NsPerOp / next.NsPerOp
	if ratio < min {
		return ratio, fmt.Errorf("gate: %s is %.2fx faster than %s, need >= %.2fx",
			next.Name, ratio, base.Name, min)
	}
	return ratio, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	force := flag.Bool("force", false, "overwrite an existing -out file")
	gate := flag.String("gate", "", "speedup gate 'BASE,NEW,MIN': require ns/op(BASE)/ns/op(NEW) >= MIN, exit 1 otherwise")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		} else if s := strings.TrimSpace(line); s != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *gate != "" {
		ratio, err := checkGate(&rep, *gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate %s ok (%.2fx)\n", *gate, ratio)
	}

	// Trajectory files (BENCH_<n>.json) are append-only history: a new run
	// gets a new number, never silently replaces an old one.
	if *out != "" && !*force {
		if _, err := os.Stat(*out); err == nil {
			fmt.Fprintf(os.Stderr,
				"benchjson: %s already exists; pick a new trajectory file or pass -force\n", *out)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
