// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON report, so CI can diff benchmark runs without
// scraping logs:
//
//	go test -run '^$' -bench 'Predict$' -benchmem . | go run ./cmd/benchjson -out BENCH.json
//
// Each benchmark line ("BenchmarkName-8  1814  1545457 ns/op  17120 B/op
// 8 allocs/op  12.3 custom/metric") becomes one record keyed by the
// benchmark name with the GOMAXPROCS suffix stripped. The three standard
// units get first-class fields; anything else (b.ReportMetric output) lands
// in "metrics". Non-benchmark lines pass through to stderr so failures stay
// visible in the pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one "Benchmark..." output line; ok is false for any
// other line (headers, PASS, ok, failures).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		} else if s := strings.TrimSpace(line); s != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
