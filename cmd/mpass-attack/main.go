// Command mpass-attack runs the full MPass pipeline end-to-end against one
// malware sample and one chosen target detector: train the detector zoo,
// select (or generate) a victim, run the hard-label black-box attack, and
// verify the adversarial example in the sandbox.
//
// Usage:
//
//	mpass-attack -target MalConv
//	mpass-attack -target AV3 -seed 9 -out ae.exe
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpass/internal/core"
	"mpass/internal/eval"
	"mpass/internal/sandbox"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpass-attack: ")
	target := flag.String("target", "MalConv", "target: MalConv, NonNeg, LightGBM, MalGCG, AV1..AV5")
	seed := flag.Int64("seed", 1, "seed for corpus, training, and attack")
	victim := flag.Int("victim", 0, "index of the victim sample")
	out := flag.String("out", "", "write the adversarial example here on success")
	workers := flag.Int("workers", 0, "worker-pool size for setup parallelism (0 = GOMAXPROCS)")
	flag.Parse()
	if *workers < 0 {
		log.Fatalf("workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}

	cfg := eval.QuickConfig()
	cfg.Seed = *seed
	cfg.MaxQueries = 100
	cfg.Workers = *workers
	fmt.Println("building corpus and training detectors (one-time, ~1 min)...")
	suite, err := eval.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var oracle core.Oracle
	for _, d := range suite.OfflineTargets() {
		if d.Name() == *target {
			oracle = core.DetectorOracle{D: d}
		}
	}
	for _, a := range suite.AVs {
		if a.Name() == *target {
			oracle = a
		}
	}
	if oracle == nil {
		log.Fatalf("unknown target %q", *target)
	}
	if *victim < 0 || *victim >= len(suite.Victims) {
		log.Fatalf("victim index out of range (have %d victims)", len(suite.Victims))
	}
	v := suite.Victims[*victim]
	fmt.Printf("victim: %s (%d bytes), target: %s\n", v.Name, len(v.Raw), *target)

	acfg := core.DefaultConfig(suite.KnownFor(*target), suite.MPassDonorPool)
	acfg.Seed = *seed
	attacker, err := core.New(acfg)
	if err != nil {
		log.Fatal(err)
	}
	counting := &core.CountingOracle{Oracle: oracle}
	start := time.Now()
	res, err := attacker.Attack(v.Raw, counting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack finished in %v: success=%v queries=%d rounds=%d\n",
		time.Since(start).Round(time.Millisecond), res.Success, res.Queries, res.Rounds)
	if !res.Success {
		os.Exit(1)
	}

	apr := 100 * float64(len(res.AE)-len(v.Raw)) / float64(len(v.Raw))
	fmt.Printf("AE size %d bytes (APR %.1f%%)\n", len(res.AE), apr)

	ok, err := sandbox.BehaviourPreserved(v.Raw, res.AE)
	if err != nil {
		log.Fatalf("sandbox: %v", err)
	}
	fmt.Printf("functionality preserved (API trace equality): %v\n", ok)

	if *out != "" {
		if err := os.WriteFile(*out, res.AE, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
