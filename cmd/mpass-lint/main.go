// Command mpass-lint runs the repo's invariant analyzers (internal/analysis)
// over a package pattern and exits non-zero when any finding survives
// suppression:
//
//	mpass-lint ./...                # plain findings, one per line
//	mpass-lint -json ./...          # machine-readable report (schema v2)
//	mpass-lint -run nakedgo,atomics # restrict the analyzer set
//	mpass-lint -timing ./...        # per-analyzer wall time on stderr
//	mpass-lint -list                # describe the analyzers
//
// The -json report is a SARIF-style envelope: schema_version, the analyzer
// set with docs, per-analyzer wall time, and findings — each finding
// carrying its optional call-path trace (the static call chain connecting
// the reported line to the primitive operation behind it).
//
// Findings are suppressed case by case with
// `//lint:ignore <analyzer> <reason>` on the flagged line or the line
// above; the reason is mandatory, a stale directive is itself a finding.
// `make lint` wires this into `make ci`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mpass/internal/analysis"
)

// report is the -json schema (version 2). Version 1 was a bare Diagnostic
// array; v2 wraps it with the run metadata CI dashboards need and extends
// findings with traces.
type report struct {
	SchemaVersion int                   `json:"schema_version"`
	Analyzers     []reportAnalyzer      `json:"analyzers"`
	Findings      []analysis.Diagnostic `json:"findings"`
}

type reportAnalyzer struct {
	Name       string  `json:"name"`
	Doc        string  `json:"doc"`
	DurationMS float64 `json:"duration_ms"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a schema-v2 JSON report")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-13s %s\n", "lint", "(pseudo) malformed //lint:ignore directives")
		fmt.Printf("%-13s %s\n", "suppressions", "(pseudo) //lint:ignore directives that no longer fire")
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		if analyzers, err = analysis.ByName(*run); err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fatal(err)
	}

	diags, timings := analysis.RunTimed(pkgs, analyzers)
	relativize(diags, *dir)
	if *timing {
		var total time.Duration
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "%-13s %8.2fms\n", t.Analyzer, float64(t.Duration.Microseconds())/1000)
			total += t.Duration
		}
		fmt.Fprintf(os.Stderr, "%-13s %8.2fms\n", "total", float64(total.Microseconds())/1000)
	}
	if *jsonOut {
		rep := report{SchemaVersion: 2, Findings: diags}
		if rep.Findings == nil {
			rep.Findings = []analysis.Diagnostic{}
		}
		docs := map[string]string{}
		for _, a := range analysis.All() {
			docs[a.Name] = a.Doc
		}
		for _, t := range timings {
			rep.Analyzers = append(rep.Analyzers, reportAnalyzer{
				Name:       t.Analyzer,
				Doc:        docs[t.Analyzer],
				DurationMS: float64(t.Duration.Microseconds()) / 1000,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			for _, step := range d.Trace {
				fmt.Printf("\tvia %s:%d:%d: %s\n", step.File, step.Line, step.Col, step.Func)
			}
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites absolute file paths relative to the working
// directory so output is stable across checkouts.
func relativize(diags []analysis.Diagnostic, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	rel := func(p string) string {
		if r, err := filepath.Rel(abs, p); err == nil && !filepath.IsAbs(r) {
			return r
		}
		return p
	}
	for i := range diags {
		diags[i].File = rel(diags[i].File)
		diags[i].Pos.Filename = diags[i].File
		for j := range diags[i].Trace {
			diags[i].Trace[j].File = rel(diags[i].Trace[j].File)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpass-lint:", err)
	os.Exit(2)
}
