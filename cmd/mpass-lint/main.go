// Command mpass-lint runs the repo's invariant analyzers (internal/analysis)
// over a package pattern and exits non-zero when any finding survives
// suppression:
//
//	mpass-lint ./...                # plain findings, one per line
//	mpass-lint -json ./...          # machine-readable findings
//	mpass-lint -run nakedgo,atomics # restrict the analyzer set
//	mpass-lint -list                # describe the analyzers
//
// Findings are suppressed case by case with
// `//lint:ignore <analyzer> <reason>` on the flagged line or the line
// above; the reason is mandatory. `make lint` wires this into `make ci`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mpass/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		if analyzers, err = analysis.ByName(*run); err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fatal(err)
	}

	diags := analysis.Run(pkgs, analyzers)
	relativize(diags, *dir)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites absolute file paths relative to the working
// directory so output is stable across checkouts.
func relativize(diags []analysis.Diagnostic, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = rel
			diags[i].Pos.Filename = rel
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpass-lint:", err)
	os.Exit(2)
}
