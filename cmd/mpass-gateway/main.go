// Command mpass-gateway is the cluster front tier: it fans a fleet of
// mpassd replicas behind one endpoint, routing scans by consistent hash of
// the content SHA-256 so each replica's score cache stays hot for its
// shard, and attack jobs to the least-loaded healthy replica under the
// cluster-wide job-ID namespace {replica}/{id}.
//
//	mpassd -addr 127.0.0.1:9001 -models models.gob &
//	mpassd -addr 127.0.0.1:9002 -models models.gob &
//	mpassd -addr 127.0.0.1:9003 -models models.gob &
//	mpass-gateway -replicas 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//	              -addr 127.0.0.1:8877
//
// The gateway probes each replica's /healthz on a jittered interval, drains a
// lost replica's shard onto survivors (requests in flight at the moment of
// failure are retried once on the rebuilt ring's owner), aggregates
// /metrics across the fleet, and answers 429 with a cluster-level
// Retry-After computed from the summed replica backlogs.
//
// SIGINT/SIGTERM drain gracefully: new requests get 503, in-flight
// forwards finish (bounded by -drain), then the process exits. The
// -fault-* flags wrap the replica transport in deterministic fault
// injection (internal/faultinject) for cluster resilience drills.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpass/internal/faultinject"
	"mpass/internal/gateway"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpass-gateway: ")

	addr := flag.String("addr", "127.0.0.1:8877", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address here once listening (for scripts using port 0)")
	replicas := flag.String("replicas", "", "comma-separated mpassd replica addresses (host:port), required")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per replica on the hash ring")
	seed := flag.Int64("seed", 1, "probe-jitter seed")

	healthInterval := flag.Duration("health-interval", time.Second, "mean /healthz probe interval per replica (jittered)")
	healthTimeout := flag.Duration("health-timeout", 2*time.Second, "per-probe deadline")
	failAfter := flag.Int("fail-after", 2, "consecutive probe failures before a replica is marked down")

	timeout := flag.Duration("timeout", 30*time.Second, "per-forwarded-request deadline")
	maxBuffer := flag.Int64("max-buffer", 1<<20, "largest scan body buffered in memory; larger bodies spool to disk while hashing")
	maxBody := flag.Int64("max-body", 64<<20, "largest accepted scan body (413 beyond)")
	spoolDir := flag.String("spool-dir", "", "directory for spooled upload temp files (default: system temp)")
	idleConns := flag.Int("idle-conns", 64, "pooled keep-alive connections per replica")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")

	faultError := flag.Float64("fault-error", 0, "inject: probability a replica request fails at the transport")
	faultLatency := flag.Float64("fault-latency", 0, "inject: probability a replica request is delayed")
	faultDelay := flag.Duration("fault-delay", 50*time.Millisecond, "inject: delay magnitude for -fault-latency")
	faultSeed := flag.Int64("fault-seed", 1, "inject: fault-decision stream seed")
	flag.Parse()

	var names []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			names = append(names, r)
		}
	}
	if len(names) == 0 {
		log.Fatal("-replicas is required: a comma-separated list of mpassd host:port addresses")
	}

	cfg := gateway.Config{
		Replicas:               names,
		VNodes:                 *vnodes,
		Seed:                   *seed,
		HealthInterval:         *healthInterval,
		HealthTimeout:          *healthTimeout,
		FailAfter:              *failAfter,
		RequestTimeout:         *timeout,
		MaxBufferBytes:         *maxBuffer,
		MaxBodyBytes:           *maxBody,
		SpoolDir:               *spoolDir,
		MaxIdleConnsPerReplica: *idleConns,
	}
	if *faultError > 0 || *faultLatency > 0 {
		cfg.Transport = faultinject.WrapTransport(nil, faultinject.TransportConfig{
			Seed:        *faultSeed,
			ErrorRate:   *faultError,
			LatencyRate: *faultLatency,
			Latency:     *faultDelay,
		})
		log.Printf("FAULT INJECTION ON: error=%.2f latency=%.2f/%v seed=%d (replica transport)",
			*faultError, *faultLatency, *faultDelay, *faultSeed)
	}

	gw, err := gateway.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s, fronting %d replicas: %s", bound, len(names), strings.Join(names, ", "))

	httpSrv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	// Serve blocks for the gateway's whole lifetime; the pool layer is for
	// bounded units of work, not a process-long accept loop.
	//lint:ignore nakedgo process-lifetime http accept loop, not pool work
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining (deadline %v)", s, *drain)
	case err := <-serveErr:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// gw.Close flips the draining flag (new requests get 503) and stops the
	// probe loops; httpSrv.Shutdown waits for in-flight forwards. They
	// overlap so one slow half does not eat the other's drain budget.
	closeDone := make(chan error, 1)
	//lint:ignore nakedgo one-shot shutdown overlap; both halves share the drain deadline
	go func() { closeDone <- gw.Close(ctx) }()
	httpErr := httpSrv.Shutdown(ctx)
	closeErr := <-closeDone
	switch {
	case closeErr != nil:
		log.Fatalf("drain incomplete: %v", closeErr)
	case httpErr != nil:
		log.Fatalf("http shutdown: %v", httpErr)
	}
	log.Printf("drained cleanly")
}
