// Command mpass-bench regenerates every table and figure of the paper's
// evaluation on the synthetic substrate and prints them in order:
//
//	PEM ranking (§III-B), Tables I–III, the functionality check (§IV-A),
//	Figure 3, Table IV, Figure 4, Tables V–VI, and the DESIGN.md ablations
//	(ensemble size, shuffle strategy).
//
// Use -quick for a fast smoke run; the default configuration is the one
// EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"mpass/internal/eval"
	"mpass/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpass-bench: ")
	quick := flag.Bool("quick", false, "scaled-down configuration")
	seed := flag.Int64("seed", 1, "global seed")
	victims := flag.Int("victims", 0, "override victim count")
	workers := flag.Int("workers", 0, "worker-pool size for training, scoring, and attacks (0 = GOMAXPROCS)")
	outPath := flag.String("out", "", "also write the report to this file")
	csvDir := flag.String("csv", "", "also export grids as CSV into this directory")
	quant := flag.String("quant", "off", "fixed-point inference tables for the neural detectors: off, int16, or int32")
	flag.Parse()

	qmode, err := nn.ParseQuantMode(*quant)
	if err != nil {
		log.Fatal(err)
	}

	cfg := eval.DefaultConfig()
	if *quick {
		cfg = eval.QuickConfig()
	}
	cfg.Seed = *seed
	if *victims > 0 {
		cfg.Victims = *victims
	}
	cfg.Workers = *workers
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(out, "mpass-bench: seed=%d victims=%d queries=%d\n",
		cfg.Seed, cfg.Victims, cfg.MaxQueries)
	fmt.Fprintln(out, "setting up suite (corpus + 4 offline models + 5 AVs + LM)...")
	s, err := eval.Setup(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if qmode != nn.QuantOff {
		// Quantized tables change victim scores by at most the certified
		// bound (1e-6 for int32), so the tables below are expected to match
		// the float64 run — this flag exists to measure that on real runs.
		s.SetQuantMode(qmode)
		fmt.Fprintf(out, "quantized inference: %v\n", qmode)
	}
	fmt.Fprintf(out, "suite ready in %v; %d eligible victims\n\n",
		time.Since(start).Round(time.Second), len(s.Victims))

	section := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Fprintf(out, "==== %s ====\n", name)
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(out, "(%v)\n\n", time.Since(t0).Round(time.Second))
	}

	section("PEM ranking (§III-B)", func() error {
		r, err := s.RunPEMRanking(5)
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.RenderPEM(r))
		frac, err := s.SectionStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "code+data byte share of victims: %.0f%% (paper §I: often >60%%)\n", 100*frac)
		return nil
	})

	exportCSV := func(name string, g *eval.Grid) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(*csvDir + "/" + name + ".csv")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := g.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
	}

	var offline *eval.Grid
	section("Tables I-III: offline models", func() error {
		var err error
		offline, err = s.RunOfflineGrid()
		if err != nil {
			return err
		}
		exportCSV("offline_grid", offline)
		fmt.Fprint(out, offline.RenderTable("TABLE I", eval.MetricASR))
		fmt.Fprintln(out)
		fmt.Fprint(out, offline.RenderTable("TABLE II", eval.MetricAVQ))
		fmt.Fprintln(out)
		fmt.Fprint(out, offline.RenderTable("TABLE III", eval.MetricAPR))
		return nil
	})

	section("§IV-A functionality check", func() error {
		reports, err := s.RunFunctionalityCheck(offline)
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.RenderFunctionality(reports))
		return nil
	})

	var avGrid *eval.Grid
	section("Figure 3: commercial ML AVs", func() error {
		var err error
		avGrid, err = s.RunAVGrid()
		if err != nil {
			return err
		}
		exportCSV("av_grid", avGrid)
		fmt.Fprint(out, avGrid.RenderTable("FIGURE 3", eval.MetricASR))
		return nil
	})

	section("Table IV: obfuscators vs MPass", func() error {
		mpassRow := make(map[string]*eval.Cell)
		for _, tgt := range avGrid.Targets {
			if c := avGrid.Cell("MPass", tgt); c != nil {
				mpassRow[tgt] = c
			}
		}
		grid, err := s.RunPackerComparison(mpassRow)
		if err != nil {
			return err
		}
		fmt.Fprint(out, grid.RenderTable("TABLE IV", eval.MetricASR))
		return nil
	})

	section("Figure 4: AV learning over 5 rounds", func() error {
		for _, avName := range []string{"AV1", "AV2", "AV3", "AV4", "AV5"} {
			curves, err := s.RunLearningCurve(avGrid, avName, 5)
			if err != nil {
				return err
			}
			fmt.Fprint(out, eval.RenderCurves(avName, curves))
			fmt.Fprintln(out)
		}
		return nil
	})

	// MPass's comparison row in Tables V and VI is its Figure-3 result
	// (same settings, code+data positions), as in the paper.
	mergeMPass := func(grid *eval.Grid) {
		for _, tgt := range avGrid.Targets {
			if c := avGrid.Cell("MPass", tgt); c != nil {
				grid.Put(c)
			}
		}
	}

	section("Table V: Other-sec ablation", func() error {
		grid, err := s.RunOtherSecAblation()
		if err != nil {
			return err
		}
		mergeMPass(grid)
		fmt.Fprint(out, grid.RenderTable("TABLE V", eval.MetricASR))
		return nil
	})

	section("Table VI: random-data ablation", func() error {
		grid, err := s.RunRandomDataAblation()
		if err != nil {
			return err
		}
		mergeMPass(grid)
		fmt.Fprint(out, grid.RenderTable("TABLE VI", eval.MetricASR))
		return nil
	})

	section("Ablation: known-ensemble size (DESIGN.md)", func() error {
		grid, err := s.RunEnsembleAblation()
		if err != nil {
			return err
		}
		fmt.Fprint(out, grid.RenderTable("ENSEMBLE ABLATION (target LightGBM)", eval.MetricASR))
		return nil
	})

	section("§VI defense probe: adversarial training", func() error {
		at, err := s.RunAdversarialTraining()
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.RenderAT("classic AT (50/50 MPass-AE/clean malware mix)", at))
		pgd, err := s.RunGradientATProbe()
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.RenderAT("gradient-noise AT (unconstrained PGD stand-in)", pgd))
		return nil
	})

	section("Ablation: shuffle strategy under AV learning (DESIGN.md)", func() error {
		with, without, err := s.RunShuffleAblation(5)
		if err != nil {
			return err
		}
		fmt.Fprint(out, eval.RenderCurves("AV1 (MPass with shuffle)", eval.LearningCurves{"MPass": with}))
		fmt.Fprint(out, eval.RenderCurves("AV1 (MPass without shuffle)", eval.LearningCurves{"MPass": without}))
		return nil
	})

	fmt.Fprintf(out, "total wall time %v\n", time.Since(start).Round(time.Second))
}
