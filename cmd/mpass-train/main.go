// Command mpass-train builds the synthetic corpus and trains the full
// detector zoo: the four offline models of §IV-A (MalConv, NonNeg,
// LightGBM, MalGCG) and the five commercial-AV simulators of §IV-B. It
// reports per-model test accuracy and calibrated thresholds.
//
// Experiment binaries retrain deterministically from the seed, so they never
// read stale models; the serving daemon is the exception — it wants a warm
// start, so `-out models.gob` persists the offline suite for
// `mpassd -models models.gob` to load in milliseconds. `-out-dir` writes the
// same models as per-engine versioned envelopes (one file per detector, each
// carrying a content-addressed version), the format the hot-reload endpoint
// swaps in without a restart.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mpass/internal/av"
	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/engine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpass-train: ")
	seed := flag.Int64("seed", 1, "corpus and training seed")
	nMal := flag.Int("malware", 60, "malware samples in the corpus")
	nBen := flag.Int("benign", 60, "benign samples in the corpus")
	workers := flag.Int("workers", 0, "worker-pool size for concurrent training (0 = GOMAXPROCS)")
	out := flag.String("out", "", "write the trained offline suite (gob) here for mpassd -models")
	outDir := flag.String("out-dir", "", "write per-engine versioned envelopes here (one .engine.gob per detector) for mpassd -models / hot reload")
	flag.Parse()
	if *workers < 0 {
		log.Fatalf("workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}

	start := time.Now()
	ds := corpus.MakeAugmentedDataset(*seed, *nMal, *nBen, 0.67)
	fmt.Printf("corpus: %d train (with augmented variants), %d test\n",
		len(ds.Train), len(ds.Test))

	cfg := detect.DefaultTrainConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	suite, err := detect.TrainSuite(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := detect.SaveSuiteFile(*out, suite); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved offline suite to %s\n", *out)
	}
	if *outDir != "" {
		set, err := engine.FromSuite(suite)
		if err != nil {
			log.Fatal(err)
		}
		if err := engine.SaveDir(*outDir, set); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %d engine envelopes to %s/ (set %s)\n", set.Len(), *outDir, set.Version())
		for _, d := range set.Drivers() {
			fmt.Printf("  %-10s %s\n", d.Name(), d.Version())
		}
	}

	fmt.Printf("\n%-10s %10s %10s\n", "model", "test acc", "threshold")
	for _, d := range suite.OfflineTargets() {
		var thr float64
		switch m := d.(type) {
		case *detect.ConvDetector:
			thr = m.Threshold
		case *detect.GBDTDetector:
			thr = m.Threshold
		}
		fmt.Printf("%-10s %9.1f%% %10.3f\n", d.Name(), 100*detect.Accuracy(d, ds.Test), thr)
	}

	avs, err := av.NewSuite(ds, av.SuiteConfig{Train: cfg, Seed: *seed + 9000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %10s %10s\n", "AV", "detect", "false pos")
	for _, a := range avs {
		var det, fp, nm, nb int
		for _, s := range ds.Test {
			if s.Family == corpus.Malware {
				nm++
				if a.Detected(s.Raw) {
					det++
				}
			} else {
				nb++
				if a.Detected(s.Raw) {
					fp++
				}
			}
		}
		fmt.Printf("%-10s %6d/%-3d %6d/%-3d\n", a.Name(), det, nm, fp, nb)
	}
	fmt.Printf("\ntrained everything in %v\n", time.Since(start).Round(time.Millisecond))
}
