// Command mpass-load drives a running mpassd with a concurrent scan burst
// (plus optional attack jobs) and reports serving throughput and latency.
// Stdout carries `go test -bench`-style lines so the existing cmd/benchjson
// flow can turn a run into a machine-readable report:
//
//	mpassd -addr 127.0.0.1:0 -addr-file /tmp/mpassd.addr &
//	mpass-load -addr "$(cat /tmp/mpassd.addr)" -clients 8 -requests 400 \
//	    | go run ./cmd/benchjson -out BENCH_3.json
//
// The tool doubles as the CI smoke driver (`make serve-smoke`): it refuses
// to start until /healthz answers ok, fails if any scan errors (429 sheds
// are counted separately — shedding is policy, not failure), and
// cross-checks /metrics against its own request count. With -faults it
// drives a fault-injecting server (`mpassd -fault-*`) instead: failed
// attack jobs are expected and reported alongside the retry/breaker/
// cancellation counters, but a job stuck outside a terminal state is still
// fatal — the lifecycle hardening must bound every job, faults or not.
//
// Reload runs (`make reload-smoke`): -reload N interleaves N POSTs to
// /v1/models/reload through the scan burst, so generations swap under
// sustained traffic. Every reload must swap cleanly (200, swapped=true),
// every scan must still succeed, each scan response must carry a model
// version the server actually served, and /healthz must agree with the last
// swap afterwards — the zero-downtime drill as a repeatable probe.
//
// Cluster runs (`make cluster-smoke`): -targets takes a comma-separated
// address list and stripes the burst across them round-robin, reporting
// per-target and aggregate throughput. -cluster marks the (single) target
// as an mpass-gateway and turns on the shard-affinity checks: the run's
// per-replica cache-hit ratio — computed from /metrics deltas, so earlier
// traffic does not launder the numbers — must reach -min-hit-ratio, and
// fleet-wide misses must stay near the distinct-sample count (each sample
// warms exactly one shard). -bench-name renames the benchmark line so one
// driver emits comparable BenchmarkClusterSingle/BenchmarkClusterGateway
// series for benchjson -gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpass/internal/corpus"
	"mpass/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpass-load: ")

	addr := flag.String("addr", "127.0.0.1:8877", "mpassd address (host:port)")
	targets := flag.String("targets", "", "comma-separated addresses; the burst is striped across them round-robin (overrides -addr)")
	cluster := flag.Bool("cluster", false, "target is an mpass-gateway: read the cluster /metrics document and enforce the shard-affinity checks")
	minHitRatio := flag.Float64("min-hit-ratio", 0.9, "with -cluster: minimum per-replica cache-hit ratio over this run")
	benchName := flag.String("bench-name", "ServeScan", "benchmark line name (printed as Benchmark<name>)")
	clients := flag.Int("clients", 8, "concurrent scan clients")
	requests := flag.Int("requests", 400, "total scan requests")
	samples := flag.Int("samples", 32, "distinct samples in the request pool (repeats exercise the cache)")
	attacks := flag.Int("attacks", 0, "attack jobs to submit and poll to completion")
	faults := flag.Bool("faults", false, "fault-drill mode: the server runs with -fault-* injection, so failed attack jobs are expected; report the fault counters instead of treating failures as fatal")
	reloads := flag.Int("reload", 0, "model hot-reloads to interleave through the scan burst (0 disables); every swap must succeed and every scan must carry a served model version")
	seed := flag.Int64("seed", 1, "sample-pool generation seed")
	streamMB := flag.Int("stream-mb", 0, "also POST a chunked upload of this many MiB to exercise the O(chunk) streaming scan path (0 disables)")
	wait := flag.Duration("wait", 15*time.Second, "how long to wait for /healthz before giving up")
	apiKey := flag.String("api-key", "", "tenant API key sent as X-API-Key on every request (for servers running with -tenants)")
	scenarioPath := flag.String("scenario", "", "scenario JSON file: run the phased multi-tenant scenario instead of a single burst, exiting non-zero on any threshold violation")
	scenarioMaxP99 := flag.Duration("scenario-max-p99", 0, "override the scenario file's max_p99_ms threshold (0 keeps the file's value)")
	flag.Parse()
	if *clients < 1 || *requests < 1 || *samples < 1 {
		log.Fatal("clients, requests, and samples must all be >= 1")
	}
	addrs := []string{*addr}
	if *targets != "" {
		addrs = addrs[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				addrs = append(addrs, t)
			}
		}
		if len(addrs) == 0 {
			log.Fatal("-targets given but empty")
		}
	}
	if *cluster && len(addrs) != 1 {
		log.Fatal("-cluster checks a single gateway target; use -targets for striping across plain replicas")
	}
	bases := make([]string, len(addrs))
	for i, a := range addrs {
		bases[i] = "http://" + a
	}
	base := bases[0]

	for _, b := range bases {
		if err := waitHealthy(b, *wait); err != nil {
			log.Fatal(err)
		}
	}

	if *scenarioPath != "" {
		if err := runScenario(base, *scenarioPath, *scenarioMaxP99); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Cluster runs judge cache affinity on this run alone: snapshot the
	// fleet counters before the burst and diff afterwards.
	var pre *clusterDoc
	if *cluster {
		var err error
		if pre, err = fetchClusterMetrics(base); err != nil {
			log.Fatal(err)
		}
	}

	// The pool mixes malware and benign PEs from the same generator family
	// mpassd trains on, so scores span both sides of the thresholds.
	g := corpus.NewGenerator(*seed + 31000)
	pool := make([][]byte, *samples)
	for i := range pool {
		fam := corpus.Benign
		if i%2 == 0 {
			fam = corpus.Malware
		}
		pool[i] = g.Sample(fam).Raw
	}

	// Reload probe: swap model generations from inside the burst itself, and
	// audit every scan response's model version against the set of
	// generations the server has legitimately served.
	var rp *reloadProbe
	if *reloads > 0 {
		if len(bases) != 1 || *cluster {
			log.Fatal("-reload drives a single plain replica")
		}
		var err error
		if rp, err = newReloadProbe(base, *reloads, *requests); err != nil {
			log.Fatal(err)
		}
	}

	// The client burst is exactly the pool layer's shape: -clients workers
	// draining a shared request counter, each request writing its own
	// latency slot. Request i goes to target i%len(bases), so a multi-target
	// run stripes the same sample mix across the whole list.
	lat := make([]time.Duration, *requests)
	perOK := make([]atomic.Int64, len(bases))
	var ok, shed, failed atomic.Int64
	start := time.Now()
	parallel.ForEach(*clients, *requests, func(i int) {
		var version *string
		if rp != nil {
			rp.maybeReload(i)
			version = new(string)
		}
		t0 := time.Now()
		status, err := postScan(bases[i%len(bases)], pool[i%len(pool)], *apiKey, version)
		lat[i] = time.Since(t0)
		switch {
		case err != nil || status >= 500:
			failed.Add(1)
		case status == http.StatusTooManyRequests:
			shed.Add(1)
		case status == http.StatusOK:
			ok.Add(1)
			perOK[i%len(bases)].Add(1)
			if rp != nil {
				rp.sawVersion(*version)
			}
		default:
			failed.Add(1)
		}
	})
	elapsed := time.Since(start)

	if ok.Load() == 0 {
		log.Fatalf("no scan succeeded (%d shed, %d failed)", shed.Load(), failed.Load())
	}
	if failed.Load() > 0 {
		log.Fatalf("%d scans failed outright", failed.Load())
	}
	if rp != nil {
		if err := rp.verify(base); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "reloads: %d swaps under load · %d scan responses audited · final version %s\n",
			rp.issued, ok.Load(), rp.lastVer)
	}

	attacksDone, attacksFailed := 0, 0
	if *attacks > 0 {
		var err error
		if attacksDone, attacksFailed, err = runAttacks(base, pool, *attacks, *apiKey); err != nil {
			log.Fatal(err)
		}
		if attacksFailed > 0 && !*faults {
			log.Fatalf("%d attack jobs failed (run with -faults if the server injects faults)", attacksFailed)
		}
	}

	var streamed time.Duration
	if *streamMB > 0 {
		var err error
		if streamed, err = runStreamScan(base, int64(*streamMB)<<20, *apiKey); err != nil {
			log.Fatal(err)
		}
	}

	var snap *metricsDoc
	var post *clusterDoc
	if *cluster {
		// The burst's HTTP responses are all in, but replica-side counters
		// may still be settling (batcher flushes, health probes mid-scrape),
		// and the per-replica snapshots are fetched non-atomically. Quiesce —
		// poll until two consecutive fleet snapshots agree — before diffing,
		// so the affinity gate below cannot flake on a half-settled read.
		var err error
		if post, err = quiesceCluster(base); err != nil {
			log.Fatal(err)
		}
		snap = &post.Cluster
	} else {
		// Sum the per-target snapshots so the cross-check below covers a
		// striped multi-target run too.
		snap = &metricsDoc{}
		for _, b := range bases {
			m, err := fetchMetrics(b)
			if err != nil {
				log.Fatal(err)
			}
			addMetrics(snap, m)
		}
	}
	if got := snap.ScanRequests; got < int64(*requests) {
		log.Fatalf("/metrics scan_requests = %d, expected >= %d", got, *requests)
	}
	if *streamMB > 0 {
		// Cross-check: the large upload must have taken the streaming path,
		// and the server must have seen every byte of it.
		if snap.ScansStreamed < 1 {
			log.Fatalf("/metrics scans_streamed = %d after a %d MiB upload, expected >= 1",
				snap.ScansStreamed, *streamMB)
		}
		if want := int64(*streamMB) << 20; snap.StreamedBytes < want {
			log.Fatalf("/metrics streamed_bytes = %d, expected >= %d", snap.StreamedBytes, want)
		}
		fmt.Fprintf(os.Stderr, "streamed a %d MiB chunked upload in %v (scans_streamed=%d)\n",
			*streamMB, streamed.Round(time.Millisecond), snap.ScansStreamed)
		fmt.Printf("BenchmarkServeScanStream 1 %d ns/op %d body-bytes\n",
			streamed.Nanoseconds(), int64(*streamMB)<<20)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := quantile(lat, 0.50), quantile(lat, 0.99)
	rps := float64(*requests) / elapsed.Seconds()
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(*requests)

	fmt.Fprintf(os.Stderr,
		"%d scans in %v (%d ok, %d shed) · %.0f req/s · p50 %v p99 %v\n",
		*requests, elapsed.Round(time.Millisecond), ok.Load(), shed.Load(), rps,
		p50.Round(time.Microsecond), p99.Round(time.Microsecond))
	if len(bases) > 1 {
		// Per-target split of the same wall clock: the aggregate above is
		// the fleet number, these are each member's share of it.
		for i, a := range addrs {
			n := perOK[i].Load()
			fmt.Fprintf(os.Stderr, "  target %s: %d ok · %.0f req/s\n",
				a, n, float64(n)/elapsed.Seconds())
		}
	}
	fmt.Fprintf(os.Stderr,
		"server: %d batches (mean %.2f, max %d, %d coalesced) · %d cache hits · %d attack jobs done\n",
		snap.Batches, snap.MeanBatch, snap.MaxBatchSize, snap.Coalesced, snap.CacheHits, attacksDone)

	// With -cluster, enforce the shard-affinity contract on this run's
	// /metrics deltas and carry the ratio into the benchmark line.
	extra := ""
	if *cluster {
		hitRatio := checkCluster(pre, post, int64(*samples), *minHitRatio)
		extra = fmt.Sprintf(" %.3f hit-ratio %d replicas", hitRatio, len(post.Replicas))
	}
	if rp != nil {
		extra += fmt.Sprintf(" %.0f reloads", float64(rp.issued))
	}

	// One benchmark line per run; extra (value, unit) pairs become benchjson
	// custom metrics.
	fmt.Printf("Benchmark%s %d %.0f ns/op %.1f req/s %d p50-ns %d p99-ns %.0f shed %.0f cache-hits %.2f mean-batch%s\n",
		*benchName, *requests, nsPerOp, rps, p50.Nanoseconds(), p99.Nanoseconds(),
		float64(shed.Load()), float64(snap.CacheHits), snap.MeanBatch, extra)

	if *faults {
		terminal := attacksDone + attacksFailed
		fmt.Fprintf(os.Stderr,
			"faults: %d attack jobs terminal (%d done, %d failed) · %d oracle queries, %d retries, %d breaker opens · %d jobs cancelled · registry %d",
			terminal, attacksDone, attacksFailed,
			snap.OracleQueries, snap.OracleRetries, snap.OracleBreaks,
			snap.JobsCancelled, snap.JobsRegistry)
		if snap.JobsRegistryCap > 0 {
			fmt.Fprintf(os.Stderr, "/%d", snap.JobsRegistryCap)
		}
		fmt.Fprintln(os.Stderr)
		fmt.Printf("BenchmarkServeFaults %d %.0f ns/op %.0f done %.0f failed %.0f oracle-retries %.0f oracle-breaks %.0f jobs-cancelled\n",
			terminal, nsPerOp,
			float64(attacksDone), float64(attacksFailed),
			float64(snap.OracleRetries), float64(snap.OracleBreaks), float64(snap.JobsCancelled))
	}
}

// waitHealthy polls /healthz until it answers 200 or the deadline passes.
func waitHealthy(base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s never became healthy: %v", base, err)
			}
			return fmt.Errorf("server at %s never became healthy", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// postScan POSTs one scan, presenting key as X-API-Key when non-empty.
// When version is non-nil the response document is decoded and the
// generation stamp written through it (the reload audit); otherwise the
// body is discarded unparsed.
func postScan(base string, raw []byte, key string, version *string) (int, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/scan", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if version != nil && resp.StatusCode == http.StatusOK {
		var doc struct {
			ModelVersion string `json:"model_version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding scan response: %w", err)
		}
		*version = doc.ModelVersion
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// reloadProbe swaps model generations mid-burst and audits the fallout. It
// tracks the set of versions the server has legitimately served this run
// (the starting generation plus each swap's result) and the versions scan
// responses actually reported; verify reconciles the two after the burst.
type reloadProbe struct {
	base     string
	want     int
	interval int

	mu       sync.Mutex
	issued   int
	lastVer  string
	versions map[string]bool

	seen sync.Map // model version -> struct{}, from scan responses
}

func newReloadProbe(base string, n, requests int) (*reloadProbe, error) {
	initial, err := fetchModelVersion(base)
	if err != nil {
		return nil, fmt.Errorf("reload probe: %w", err)
	}
	interval := requests / (n + 1)
	if interval < 1 {
		interval = 1
	}
	return &reloadProbe{
		base:     base,
		want:     n,
		interval: interval,
		lastVer:  initial,
		versions: map[string]bool{initial: true},
	}, nil
}

// maybeReload fires a reload at evenly spaced points of the burst. The swap
// itself must succeed: a 501 (no loader configured) or 422 (certification
// refused) under this drill is a deployment bug, not load shedding.
func (rp *reloadProbe) maybeReload(i int) {
	if i == 0 || i%rp.interval != 0 {
		return
	}
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.issued >= rp.want {
		return
	}
	resp, err := http.Post(rp.base+"/v1/models/reload", "application/octet-stream", nil)
	if err != nil {
		log.Fatalf("reload %d: %v", rp.issued+1, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("reload %d: status %d: %s", rp.issued+1, resp.StatusCode, body)
	}
	var doc struct {
		Swapped      bool   `json:"swapped"`
		ModelVersion string `json:"model_version"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		log.Fatalf("reload %d: decoding response: %v", rp.issued+1, err)
	}
	if !doc.Swapped || doc.ModelVersion == "" {
		log.Fatalf("reload %d: server answered 200 without swapping: %s", rp.issued+1, body)
	}
	rp.issued++
	rp.lastVer = doc.ModelVersion
	rp.versions[doc.ModelVersion] = true
}

func (rp *reloadProbe) sawVersion(v string) { rp.seen.Store(v, struct{}{}) }

// verify reconciles the audit after the burst: every reload fired, every
// scan response named a generation the server really served, /healthz agrees
// with the final swap, and /metrics counted the swaps.
func (rp *reloadProbe) verify(base string) error {
	if rp.issued != rp.want {
		return fmt.Errorf("reload probe: issued %d of %d reloads — too few requests to space them", rp.issued, rp.want)
	}
	var bad []string
	rp.seen.Range(func(k, _ any) bool {
		v := k.(string)
		if v == "" || !rp.versions[v] {
			bad = append(bad, v)
		}
		return true
	})
	if len(bad) > 0 {
		return fmt.Errorf("reload probe: scan responses carried unserved model versions %q", bad)
	}
	final, err := fetchModelVersion(base)
	if err != nil {
		return fmt.Errorf("reload probe: %w", err)
	}
	if final != rp.lastVer {
		return fmt.Errorf("reload probe: /healthz model_version %s, want %s after the last swap", final, rp.lastVer)
	}
	m, err := fetchMetrics(base)
	if err != nil {
		return fmt.Errorf("reload probe: %w", err)
	}
	if m.Reloads < int64(rp.issued) {
		return fmt.Errorf("reload probe: /metrics reloads = %d, expected >= %d", m.Reloads, rp.issued)
	}
	return nil
}

// fetchModelVersion reads the resident generation stamp off /healthz.
func fetchModelVersion(base string) (string, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		ModelVersion string `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", fmt.Errorf("decoding /healthz: %w", err)
	}
	if doc.ModelVersion == "" {
		return "", fmt.Errorf("/healthz carries no model_version")
	}
	return doc.ModelVersion, nil
}

// patternBody generates n pseudo-random bytes on the fly, so the client
// never holds the upload either — both ends of the wire stay O(chunk).
type patternBody struct {
	remaining int64
	state     uint64
}

func (r *patternBody) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remaining {
		n = int(r.remaining)
	}
	for i := 0; i < n; i++ {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	r.remaining -= int64(n)
	return n, nil
}

// runStreamScan POSTs a size-byte chunked upload (unknown Content-Length,
// so the server must stream it) and requires a 200.
func runStreamScan(base string, size int64, key string) (time.Duration, error) {
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/scan", &patternBody{remaining: size, state: 1})
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("streamed scan: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("streamed scan: status %d: %s", resp.StatusCode, body)
	}
	return time.Since(t0), nil
}

// runAttacks submits n attack jobs on pool samples and polls each to a
// terminal state, returning how many ended done vs failed. A job that
// never reaches a terminal state is an error — the lifecycle hardening
// (deadlines, shutdown cancellation) exists precisely so that cannot
// happen, faults or not.
func runAttacks(base string, pool [][]byte, n int, key string) (done, failed int, err error) {
	type accepted struct {
		Poll string `json:"poll"`
	}
	var polls []string
	for i := 0; i < n; i++ {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/attack",
			bytes.NewReader(pool[i%len(pool)]))
		if err != nil {
			return 0, 0, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, 0, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			continue // shed by admission control; not a failure
		}
		if resp.StatusCode != http.StatusAccepted {
			return 0, 0, fmt.Errorf("attack %d: status %d: %s", i, resp.StatusCode, body)
		}
		var a accepted
		if err := json.Unmarshal(body, &a); err != nil {
			return 0, 0, err
		}
		polls = append(polls, a.Poll)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for _, p := range polls {
		for {
			resp, err := authedGet(base+p, key)
			if err != nil {
				return done, failed, err
			}
			var v struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				return done, failed, err
			}
			if v.State == "done" {
				done++
				break
			}
			if v.State == "failed" {
				failed++
				break
			}
			if time.Now().After(deadline) {
				return done, failed, fmt.Errorf("job %s stuck in state %q", p, v.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return done, failed, nil
}

// authedGet GETs a URL, presenting key as X-API-Key when non-empty.
func authedGet(url, key string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	return http.DefaultClient.Do(req)
}

// metricsDoc is the subset of the /metrics document the tool reports.
type metricsDoc struct {
	ScanRequests int64   `json:"scan_requests"`
	Batches      int64   `json:"batches"`
	MeanBatch    float64 `json:"mean_batch_size"`
	MaxBatchSize int64   `json:"max_batch_size"`
	Coalesced    int64   `json:"coalesced_batches"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`

	// Streaming scan path.
	ScansStreamed int64 `json:"scans_streamed"`
	StreamedBytes int64 `json:"streamed_bytes"`

	// Hot-reload counters, checked by the -reload probe.
	Reloads        int64 `json:"reloads"`
	ReloadFailures int64 `json:"reload_failures"`

	// Lifecycle/fault counters, reported in -faults mode.
	OracleQueries   int64 `json:"oracle_queries"`
	OracleRetries   int64 `json:"oracle_retries"`
	OracleBreaks    int64 `json:"oracle_breaks"`
	JobsEvicted     int64 `json:"jobs_evicted"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	JobsRegistry    int   `json:"jobs_registry"`
	JobsRegistryCap int   `json:"jobs_registry_cap"`
}

func fetchMetrics(base string) (*metricsDoc, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("decoding /metrics: %w", err)
	}
	return &m, nil
}

// addMetrics accumulates the fields the cross-checks read.
func addMetrics(dst, src *metricsDoc) {
	dst.ScanRequests += src.ScanRequests
	dst.Batches += src.Batches
	dst.Coalesced += src.Coalesced
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.ScansStreamed += src.ScansStreamed
	dst.StreamedBytes += src.StreamedBytes
	if src.MaxBatchSize > dst.MaxBatchSize {
		dst.MaxBatchSize = src.MaxBatchSize
	}
	if dst.Batches > 0 {
		dst.MeanBatch = (dst.MeanBatch*float64(dst.Batches-src.Batches) +
			src.MeanBatch*float64(src.Batches)) / float64(dst.Batches)
	}
	dst.OracleQueries += src.OracleQueries
	dst.OracleRetries += src.OracleRetries
	dst.OracleBreaks += src.OracleBreaks
	dst.JobsEvicted += src.JobsEvicted
	dst.JobsCancelled += src.JobsCancelled
	dst.JobsRegistry += src.JobsRegistry
	dst.JobsRegistryCap += src.JobsRegistryCap
}

// clusterDoc is the slice of mpass-gateway's /metrics the tool reads: the
// fleet sum in the same shape as a single replica plus the per-replica
// snapshots the affinity checks diff.
type clusterDoc struct {
	Cluster metricsDoc `json:"cluster"`
	Gateway struct {
		ScansRouted int64 `json:"scans_routed"`
		ScanRetries int64 `json:"scan_retries"`
		ScansFailed int64 `json:"scans_failed"`
	} `json:"gateway"`
	Replicas []struct {
		Name    string      `json:"name"`
		Healthy bool        `json:"healthy"`
		Metrics *metricsDoc `json:"metrics"`
	} `json:"replicas"`
}

func fetchClusterMetrics(base string) (*clusterDoc, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc clusterDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding cluster /metrics: %w", err)
	}
	if len(doc.Replicas) == 0 {
		return nil, fmt.Errorf("cluster /metrics lists no replicas — is the target really an mpass-gateway?")
	}
	return &doc, nil
}

// quiesceCluster polls the fleet /metrics until two consecutive snapshots
// carry identical traffic counters — the burst's effects have fully landed
// on every replica — and returns the settled snapshot. The fingerprint
// deliberately covers only burst-driven counters: probe-driven ones (job
// polls, health checks) tick at rest and would never settle.
func quiesceCluster(base string) (*clusterDoc, error) {
	deadline := time.Now().Add(10 * time.Second)
	prev := ""
	for {
		doc, err := fetchClusterMetrics(base)
		if err != nil {
			return nil, err
		}
		key := settleKey(doc)
		if prev != "" && key == prev {
			return doc, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster metrics never quiesced within 10s (still moving: %s)", key)
		}
		prev = key
		time.Sleep(100 * time.Millisecond)
	}
}

// settleKey fingerprints the per-replica counters the affinity checks read.
func settleKey(doc *clusterDoc) string {
	var b strings.Builder
	for _, r := range doc.Replicas {
		if r.Metrics == nil {
			fmt.Fprintf(&b, "%s:down;", r.Name)
			continue
		}
		fmt.Fprintf(&b, "%s:%d,%d,%d,%d,%d;", r.Name,
			r.Metrics.ScanRequests, r.Metrics.CacheHits, r.Metrics.CacheMisses,
			r.Metrics.ScansStreamed, r.Metrics.Batches)
	}
	return b.String()
}

// checkCluster enforces the shard-affinity contract on this run's deltas
// and returns the fleet-wide cache-hit ratio. Two properties must hold
// under consistent-hash routing of a repeating sample pool:
//
//   - per replica, hits/(hits+misses) >= minHit: repeats of a sample keep
//     landing on the shard that already scored it;
//   - fleet-wide misses stay within 2x the distinct-sample count: each
//     sample cold-misses on exactly its home replica, with slack only for
//     a re-shard mid-run (retried keys warm a second shard).
//
// A broken ring degrades both: keys wander, every replica cold-misses the
// whole pool, and the ratio collapses toward 1/replicas of the ideal.
func checkCluster(pre, post *clusterDoc, samples int64, minHit float64) float64 {
	preHits := map[string][2]int64{}
	for _, r := range pre.Replicas {
		if r.Metrics != nil {
			preHits[r.Name] = [2]int64{r.Metrics.CacheHits, r.Metrics.CacheMisses}
		}
	}
	var fleetHits, fleetMisses int64
	for _, r := range post.Replicas {
		if r.Metrics == nil {
			// A replica the gateway has marked down is allowed to be
			// unreachable — that is the kill drill. A replica claimed
			// healthy but not answering /metrics is a real failure.
			if r.Healthy {
				log.Fatalf("cluster check: healthy replica %s unreachable for /metrics", r.Name)
			}
			fmt.Fprintf(os.Stderr, "  replica %s: down, excluded from affinity check\n", r.Name)
			continue
		}
		base := preHits[r.Name]
		hits := r.Metrics.CacheHits - base[0]
		misses := r.Metrics.CacheMisses - base[1]
		fleetHits += hits
		fleetMisses += misses
		if hits+misses == 0 {
			continue // owned no sampled keys this run
		}
		ratio := float64(hits) / float64(hits+misses)
		fmt.Fprintf(os.Stderr, "  replica %s: %d hits / %d misses · hit ratio %.3f\n",
			r.Name, hits, misses, ratio)
		if ratio < minHit {
			log.Fatalf("cluster check: replica %s cache-hit ratio %.3f < %.3f — shard affinity broken",
				r.Name, ratio, minHit)
		}
	}
	if fleetMisses > 2*samples {
		log.Fatalf("cluster check: %d fleet-wide cache misses for %d distinct samples — keys are wandering across shards",
			fleetMisses, samples)
	}
	if fleetHits+fleetMisses == 0 {
		log.Fatal("cluster check: no cache traffic recorded during the run")
	}
	return float64(fleetHits) / float64(fleetHits+fleetMisses)
}

// quantile reads the q-th quantile from an ascending latency slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
