// Scenario mode: a small JSON DSL that grows the single burst into a
// phased, multi-tenant, mixed-traffic run with pass/fail thresholds — the
// k6-style gate behind `make scenario-gate`. A scenario names its tenants
// (and their API keys), then runs phases in order; each phase's traffic
// streams run concurrently, and each stream is a client pool issuing a
// deterministic mix of scan / cachemiss / attack / stream requests under
// one tenant's key. After the last phase the run is judged against the
// thresholds; any violation lists to stderr and the process exits
// non-zero, which is what lets `make ci` fail on a fairness or latency
// regression. Stdout carries one `go test -bench`-style line per run for
// the existing benchjson path.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpass/internal/corpus"
	"mpass/internal/parallel"
)

// scenarioFile is the on-disk DSL.
type scenarioFile struct {
	Name     string            `json:"name"`
	Seed     int64             `json:"seed"`
	Samples  int               `json:"samples"`   // distinct samples in the shared pool
	StreamMB int               `json:"stream_mb"` // body size for "stream" traffic (MiB)
	Tenants  map[string]string `json:"tenants"`   // tenant name -> API key ("" key = unauthenticated)
	Phases   []scenarioPhase   `json:"phases"`
	// Thresholds judge the run. Only compliant (non-noisy) streams count
	// toward p99/shed/error/correctness — the noisy tenant is *supposed* to
	// be shed; the gate asserts everyone else keeps their SLO.
	Thresholds thresholds `json:"thresholds"`
}

type scenarioPhase struct {
	Name    string          `json:"name"`
	Streams []trafficStream `json:"streams"`
}

type trafficStream struct {
	Tenant   string             `json:"tenant"`
	Clients  int                `json:"clients"`
	Requests int                `json:"requests"`
	Noisy    bool               `json:"noisy"`   // expected to be shed; excluded from SLO stats
	Traffic  map[string]float64 `json:"traffic"` // kind -> weight; empty = all "scan"
}

// thresholds are all optional (nil = unchecked), so a scenario can gate on
// exactly the properties it exercises.
type thresholds struct {
	MaxP99Ms         *float64 `json:"max_p99_ms"`
	MaxShedRate      *float64 `json:"max_shed_rate"`
	MaxErrorRate     *float64 `json:"max_error_rate"`
	MinCorrectness   *float64 `json:"min_correctness"`
	FairnessMaxDelta *float64 `json:"fairness_max_delta"`
}

var trafficKinds = map[string]bool{"scan": true, "cachemiss": true, "attack": true, "stream": true}

// parseScenario decodes and validates a scenario document.
func parseScenario(data []byte) (*scenarioFile, error) {
	var sc scenarioFile
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("decoding scenario: %w", err)
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("scenario has no name")
	}
	if len(sc.Phases) == 0 {
		return nil, fmt.Errorf("scenario %q declares no phases", sc.Name)
	}
	if sc.Samples <= 0 {
		sc.Samples = 32
	}
	if sc.StreamMB <= 0 {
		sc.StreamMB = 2
	}
	for pi, ph := range sc.Phases {
		if ph.Name == "" {
			return nil, fmt.Errorf("scenario %q: phase %d has no name", sc.Name, pi)
		}
		if len(ph.Streams) == 0 {
			return nil, fmt.Errorf("scenario %q: phase %q has no streams", sc.Name, ph.Name)
		}
		for si, st := range ph.Streams {
			if st.Tenant == "" {
				return nil, fmt.Errorf("phase %q stream %d names no tenant", ph.Name, si)
			}
			if _, ok := sc.Tenants[st.Tenant]; !ok {
				return nil, fmt.Errorf("phase %q stream %d: tenant %q not in the scenario's tenants map", ph.Name, si, st.Tenant)
			}
			if st.Clients < 1 || st.Requests < 1 {
				return nil, fmt.Errorf("phase %q stream %d: clients and requests must be >= 1", ph.Name, si)
			}
			for kind, w := range st.Traffic {
				if !trafficKinds[kind] {
					return nil, fmt.Errorf("phase %q stream %d: unknown traffic kind %q", ph.Name, si, kind)
				}
				if w < 0 {
					return nil, fmt.Errorf("phase %q stream %d: negative weight for %q", ph.Name, si, kind)
				}
			}
		}
	}
	return &sc, nil
}

// streamStats is one traffic stream's outcome tally.
type streamStats struct {
	ok, shed, failed atomic.Int64
	badRetryAfter    atomic.Int64 // 429s missing an integer Retry-After >= 1
	audited          atomic.Int64 // scan responses checked for score consistency
	incorrect        atomic.Int64 // scans whose scores disagreed with a prior response

	mu  sync.Mutex
	lat []time.Duration //mpass:guardedby mu — scan/cachemiss latencies
}

func (s *streamStats) observe(d time.Duration) {
	s.mu.Lock()
	s.lat = append(s.lat, d)
	s.mu.Unlock()
}

func (s *streamStats) total() int64 { return s.ok.Load() + s.shed.Load() + s.failed.Load() }

// scenarioRun holds the shared state one scenario execution accumulates.
type scenarioRun struct {
	base string
	sc   *scenarioFile
	pool [][]byte

	// scores audits correctness: (sha256 | model_version) -> the score
	// fingerprint first observed for it. Any later response disagreeing is
	// a correctness failure — the serving tier returned different verdicts
	// for identical bytes under the same model generation.
	scores sync.Map

	uniq atomic.Int64 // cache-miss body uniquifier
}

// runScenario executes the scenario at path against base and enforces its
// thresholds, returning an error (non-zero exit) on any violation.
func runScenario(base, path string, maxP99Override time.Duration) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := parseScenario(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if maxP99Override > 0 {
		ms := float64(maxP99Override) / 1e6
		sc.Thresholds.MaxP99Ms = &ms
	}

	g := corpus.NewGenerator(sc.Seed + 31000)
	run := &scenarioRun{base: base, sc: sc, pool: make([][]byte, sc.Samples)}
	for i := range run.pool {
		fam := corpus.Benign
		if i%2 == 0 {
			fam = corpus.Malware
		}
		run.pool[i] = g.Sample(fam).Raw
	}

	type streamResult struct {
		phase  string
		stream trafficStream
		stats  *streamStats
	}
	var results []streamResult
	start := time.Now()
	for _, ph := range sc.Phases {
		phaseStart := time.Now()
		stats := make([]*streamStats, len(ph.Streams))
		for i := range stats {
			stats[i] = &streamStats{}
		}
		streams := ph.Streams
		// Streams run concurrently — that is what makes a contention phase a
		// contention phase — and each stream runs its own client pool.
		parallel.ForEach(len(streams), len(streams), func(si int) {
			st := streams[si]
			key := sc.Tenants[st.Tenant]
			parallel.ForEach(st.Clients, st.Requests, func(i int) {
				kind := pickKind(st.Traffic, unitRand(sc.Seed, si, i))
				run.issue(kind, key, si, i, stats[si])
			})
		})
		for si, st := range streams {
			s := stats[si]
			tag := ""
			if st.Noisy {
				tag = " [noisy]"
			}
			fmt.Fprintf(os.Stderr, "phase %-12s %s%s: %d ok, %d shed, %d failed (%v)\n",
				ph.Name, st.Tenant, tag, s.ok.Load(), s.shed.Load(), s.failed.Load(),
				time.Since(phaseStart).Round(time.Millisecond))
			results = append(results, streamResult{phase: ph.Name, stream: st, stats: s})
		}
	}
	elapsed := time.Since(start)

	// Judge the run. Compliant-stream aggregates drive every threshold.
	var lat []time.Duration
	var okN, shedN, failN, auditedN, incorrectN, badRA int64
	noisyPhases := map[string]bool{}
	for _, r := range results {
		badRA += r.stats.badRetryAfter.Load()
		if r.stream.Noisy {
			noisyPhases[r.phase] = true
			continue
		}
		r.stats.mu.Lock()
		lat = append(lat, r.stats.lat...)
		r.stats.mu.Unlock()
		okN += r.stats.ok.Load()
		shedN += r.stats.shed.Load()
		failN += r.stats.failed.Load()
		auditedN += r.stats.audited.Load()
		incorrectN += r.stats.incorrect.Load()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := quantile(lat, 0.99)
	total := okN + shedN + failN
	shedRate, errRate, correctness := 0.0, 0.0, 1.0
	if total > 0 {
		shedRate = float64(shedN) / float64(total)
		errRate = float64(failN) / float64(total)
	}
	if auditedN > 0 {
		correctness = float64(auditedN-incorrectN) / float64(auditedN)
	}

	// Fairness: for each compliant tenant, how much does its shed rate
	// degrade in phases where a noisy tenant is also running, versus phases
	// without one? The bound is the per-tenant isolation contract.
	fairnessDelta := 0.0
	type rates struct{ shed, total int64 }
	contended := map[string]*rates{}
	baseline := map[string]*rates{}
	for _, r := range results {
		if r.stream.Noisy {
			continue
		}
		m := baseline
		if noisyPhases[r.phase] {
			m = contended
		}
		rt := m[r.stream.Tenant]
		if rt == nil {
			rt = &rates{}
			m[r.stream.Tenant] = rt
		}
		rt.shed += r.stats.shed.Load()
		rt.total += r.stats.total()
	}
	for tenant, c := range contended {
		b := baseline[tenant]
		if b == nil || b.total == 0 || c.total == 0 {
			continue
		}
		delta := float64(c.shed)/float64(c.total) - float64(b.shed)/float64(b.total)
		if delta > fairnessDelta {
			fairnessDelta = delta
		}
	}

	rps := float64(total) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr,
		"scenario %s: %d compliant requests in %v · %.0f req/s · p99 %v · shed %.3f · errors %.3f · correctness %.4f · fairness-delta %.3f\n",
		sc.Name, total, elapsed.Round(time.Millisecond), rps,
		p99.Round(time.Microsecond), shedRate, errRate, correctness, fairnessDelta)

	nsPerOp := 0.0
	if total > 0 {
		nsPerOp = float64(elapsed.Nanoseconds()) / float64(total)
	}
	fmt.Printf("BenchmarkScenario%s %d %.0f ns/op %.1f req/s %d p99-ns %.4f shed-rate %.4f fairness-delta %.4f correctness\n",
		camelName(sc.Name), total, nsPerOp, rps, p99.Nanoseconds(), shedRate, fairnessDelta, correctness)

	var violations []string
	t := sc.Thresholds
	if badRA > 0 {
		violations = append(violations, fmt.Sprintf("%d 429 responses lacked an integer Retry-After >= 1", badRA))
	}
	if t.MaxP99Ms != nil && float64(p99)/1e6 > *t.MaxP99Ms {
		violations = append(violations, fmt.Sprintf("p99 %.1fms > max %.1fms", float64(p99)/1e6, *t.MaxP99Ms))
	}
	if t.MaxShedRate != nil && shedRate > *t.MaxShedRate {
		violations = append(violations, fmt.Sprintf("compliant shed rate %.4f > max %.4f", shedRate, *t.MaxShedRate))
	}
	if t.MaxErrorRate != nil && errRate > *t.MaxErrorRate {
		violations = append(violations, fmt.Sprintf("compliant error rate %.4f > max %.4f", errRate, *t.MaxErrorRate))
	}
	if t.MinCorrectness != nil && correctness < *t.MinCorrectness {
		violations = append(violations, fmt.Sprintf("correctness %.4f < min %.4f (%d of %d scans disagreed)",
			correctness, *t.MinCorrectness, incorrectN, auditedN))
	}
	if t.FairnessMaxDelta != nil && fairnessDelta > *t.FairnessMaxDelta {
		violations = append(violations, fmt.Sprintf("fairness delta %.4f > max %.4f", fairnessDelta, *t.FairnessMaxDelta))
	}
	if total == 0 {
		violations = append(violations, "no compliant traffic ran")
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "THRESHOLD VIOLATED: %s\n", v)
		}
		return fmt.Errorf("scenario %s failed %d threshold(s)", sc.Name, len(violations))
	}
	fmt.Fprintf(os.Stderr, "scenario %s: all thresholds met\n", sc.Name)
	return nil
}

// issue performs one request of the given kind and tallies it.
func (run *scenarioRun) issue(kind, key string, stream, i int, st *streamStats) {
	switch kind {
	case "scan":
		run.doScan(run.pool[i%len(run.pool)], key, st, true)
	case "cachemiss":
		// A globally unique suffix defeats the score cache, forcing the full
		// batcher path; the mutated body is still audited for consistency
		// against any replica that later scores the same bytes.
		body := append(append([]byte(nil), run.pool[i%len(run.pool)]...),
			[]byte(fmt.Sprintf("::miss-%d", run.uniq.Add(1)))...)
		run.doScan(body, key, st, true)
	case "attack":
		run.doAttack(run.pool[i%len(run.pool)], key, st)
	case "stream":
		run.doStream(key, int64(run.sc.StreamMB)<<20, int64(stream)<<32|int64(i), st)
	}
}

// doScan POSTs one scan, audits the 200 response's scores for consistency,
// and checks every 429 for a legal Retry-After.
func (run *scenarioRun) doScan(body []byte, key string, st *streamStats, timed bool) {
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, run.base+"/v1/scan", bytes.NewReader(body))
	if err != nil {
		st.failed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		st.failed.Add(1)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		if timed {
			st.observe(time.Since(t0))
		}
		st.ok.Add(1)
		run.auditScan(resp.Body, body, st)
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		st.shed.Add(1)
		checkRetryAfter(resp, st)
	default:
		io.Copy(io.Discard, resp.Body)
		st.failed.Add(1)
	}
}

// auditScan pins (sha256, model_version) -> scores: the first response
// wins, and every later response for the same pair must agree exactly.
func (run *scenarioRun) auditScan(r io.Reader, sent []byte, st *streamStats) {
	var doc struct {
		SHA256       string `json:"sha256"`
		ModelVersion string `json:"model_version"`
		Results      []struct {
			Model string  `json:"model"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		// The 200 was already tallied in ok by doScan; tallying failed here
		// too would double-count the request. An undecodable body is an
		// audit failure — a response the server got wrong, not a second
		// request.
		st.audited.Add(1)
		st.incorrect.Add(1)
		return
	}
	sum := sha256.Sum256(sent)
	if doc.SHA256 != hex.EncodeToString(sum[:]) {
		// The server hashed different bytes than we sent.
		st.incorrect.Add(1)
		st.audited.Add(1)
		return
	}
	var fp strings.Builder
	for _, res := range doc.Results {
		fmt.Fprintf(&fp, "%s=%x;", res.Model, res.Score)
	}
	keyStr := doc.SHA256 + "|" + doc.ModelVersion
	st.audited.Add(1)
	if prev, loaded := run.scores.LoadOrStore(keyStr, fp.String()); loaded && prev.(string) != fp.String() {
		st.incorrect.Add(1)
	}
}

// doAttack submits one attack job and polls it to a terminal state; a 429
// at submission is a shed, a job stuck outside a terminal state a failure.
func (run *scenarioRun) doAttack(body []byte, key string, st *streamStats) {
	req, err := http.NewRequest(http.MethodPost, run.base+"/v1/attack", bytes.NewReader(body))
	if err != nil {
		st.failed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		st.failed.Add(1)
		return
	}
	rbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		st.shed.Add(1)
		checkRetryAfter(resp, st)
		return
	case http.StatusAccepted:
	default:
		st.failed.Add(1)
		return
	}
	var acc struct {
		Poll string `json:"poll"`
	}
	if err := json.Unmarshal(rbody, &acc); err != nil || acc.Poll == "" {
		st.failed.Add(1)
		return
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		presp, err := authedGet(run.base+acc.Poll, key)
		if err != nil {
			st.failed.Add(1)
			return
		}
		var v struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(presp.Body).Decode(&v)
		presp.Body.Close()
		if err != nil {
			st.failed.Add(1)
			return
		}
		// Both terminal states count as ok: an attack that ran its budget
		// and lost is a served request, not a serving failure.
		if v.State == "done" || v.State == "failed" {
			st.ok.Add(1)
			return
		}
		if time.Now().After(deadline) {
			st.failed.Add(1)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// doStream POSTs one chunked upload of size bytes (unknown Content-Length,
// so the replica must take the O(chunk) streaming path).
func (run *scenarioRun) doStream(key string, size, seed int64, st *streamStats) {
	req, err := http.NewRequest(http.MethodPost, run.base+"/v1/scan",
		&patternBody{remaining: size, state: uint64(seed) | 1})
	if err != nil {
		st.failed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		st.failed.Add(1)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		st.ok.Add(1)
	case http.StatusTooManyRequests:
		st.shed.Add(1)
		checkRetryAfter(resp, st)
	default:
		st.failed.Add(1)
	}
}

// checkRetryAfter enforces the shed contract: every 429 — quota or
// capacity, replica or gateway — must carry an integer Retry-After >= 1.
func checkRetryAfter(resp *http.Response, st *streamStats) {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		st.badRetryAfter.Add(1)
	}
}

// pickKind selects a traffic kind from the weighted mix. Kinds are walked
// in a fixed order so the choice is a pure function of (weights, u).
func pickKind(traffic map[string]float64, u float64) string {
	if len(traffic) == 0 {
		return "scan"
	}
	order := []string{"scan", "cachemiss", "attack", "stream"}
	total := 0.0
	for _, k := range order {
		total += traffic[k]
	}
	if total <= 0 {
		return "scan"
	}
	x := u * total
	for _, k := range order {
		if w := traffic[k]; w > 0 {
			if x < w {
				return k
			}
			x -= w
		}
	}
	return "scan"
}

// unitRand maps (seed, stream, i) to [0, 1) through a splitmix64 finalizer
// — deterministic across runs, decorrelated across streams and requests.
func unitRand(seed int64, stream, i int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xBF58476D1CE4E5B9 + uint64(i)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// camelName renders a scenario name as a benchmark identifier:
// "noisy-neighbor" -> "NoisyNeighbor".
func camelName(name string) string {
	var b strings.Builder
	up := true
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
			if up {
				r -= 'a' - 'A'
			}
			b.WriteRune(r)
			up = false
		case r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			up = false
		default:
			up = true
		}
	}
	return b.String()
}
