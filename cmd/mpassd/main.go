// Command mpassd is the serving daemon: it keeps the trained detector
// engines resident behind the driver registry of internal/engine and exposes
// the scan/attack HTTP API of internal/server — micro-batched scoring on
// POST /v1/scan, async MPass attack jobs on POST /v1/attack, zero-downtime
// model hot-reload on POST /v1/models/reload, plus /healthz and /metrics.
//
// -models accepts either form: a legacy monolithic gob from
// `mpass-train -out models.gob`, or a directory of per-engine envelopes from
// `mpass-train -out-dir models/`. When the path is absent, engines are
// trained in-process from the seed and saved back (legacy file for a .gob
// path, per-engine envelopes otherwise) so the next start is fast:
//
//	mpass-train -out-dir models/
//	mpassd -models models/ -addr 127.0.0.1:8877
//	curl -X POST 'http://127.0.0.1:8877/v1/models/reload'   # after retraining
//
// SIGINT/SIGTERM drain gracefully: new requests are rejected, in-flight
// scans and attack jobs finish (bounded by -drain), then the process exits.
// Attack jobs are individually bounded by -job-deadline, finished results
// are retained for -job-ttl inside a -max-jobs-capped registry, and the
// -fault-* flags wrap each job's oracle in deterministic fault injection
// (internal/faultinject) for resilience drills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/engine"
	"mpass/internal/faultinject"
	"mpass/internal/nn"
	"mpass/internal/server"
	"mpass/internal/tenant"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpassd: ")

	addr := flag.String("addr", "127.0.0.1:8877", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address here once listening (for scripts using port 0)")
	models := flag.String("models", "", "model path: legacy suite gob or per-engine envelope dir; loaded if present, else trained and saved here")
	withRNN := flag.Bool("rnn", false, "also serve the RNN perplexity engine (trained in-process when not in the model path)")
	seed := flag.Int64("seed", 1, "corpus/training seed when models are trained in-process")
	nMal := flag.Int("malware", 60, "malware samples in the training corpus")
	nBen := flag.Int("benign", 60, "benign samples in the training corpus")
	workers := flag.Int("workers", 0, "worker-pool size for in-process training (0 = GOMAXPROCS)")
	donors := flag.Int("donors", 64, "benign-donor pool size for attack jobs")
	maxQueries := flag.Int("max-queries", 100, "per-job oracle query budget")

	maxBatch := flag.Int("max-batch", 32, "max scans per coalesced batch")
	window := flag.Duration("batch-window", 2*time.Millisecond, "batching window after the first request")
	scanQueue := flag.Int("scan-queue", 256, "scan admission queue; full sheds with 429")
	cacheSize := flag.Int("cache", 4096, "score-cache entries (0 disables)")
	attackWorkers := flag.Int("attack-workers", 2, "concurrent attack jobs")
	attackQueue := flag.Int("attack-queue", 64, "attack admission queue; full sheds with 429")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	quant := flag.String("quant", "off", "fixed-point inference tables for the neural detectors: off, int16, or int32")
	streamThreshold := flag.Int64("stream-threshold", 1<<20, "scan bodies longer than this stream in O(chunk) memory (negative disables streaming)")
	streamChunk := flag.Int("stream-chunk", 256<<10, "streaming scan read size")
	maxStreamBytes := flag.Int64("max-stream-bytes", 64<<20, "largest accepted streamed scan body (413 beyond)")

	tenantsPath := flag.String("tenants", "", "tenant allowlist JSON; enables API-key auth + per-tenant quotas (SIGHUP or POST /v1/tenants/reload re-reads it)")

	jobDeadline := flag.Duration("job-deadline", 2*time.Minute, "per-attack-job runtime cap (negative disables)")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "finished-job result retention (negative disables)")
	maxJobs := flag.Int("max-jobs", 4096, "job-registry cap, live + retained (negative = unbounded)")

	faultHang := flag.Float64("fault-hang", 0, "inject: probability an oracle query hangs until cancelled")
	faultError := flag.Float64("fault-error", 0, "inject: probability an oracle query fails transiently")
	faultLatency := flag.Float64("fault-latency", 0, "inject: probability an oracle query is delayed")
	faultDelay := flag.Duration("fault-delay", 50*time.Millisecond, "inject: delay magnitude for -fault-latency")
	faultSeed := flag.Int64("fault-seed", 1, "inject: fault-decision stream seed")
	flag.Parse()
	if *workers < 0 {
		log.Fatalf("workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}

	qmode, err := nn.ParseQuantMode(*quant)
	if err != nil {
		log.Fatal(err)
	}

	set, err := loadOrTrain(*models, *seed, *nMal, *nBen, *workers, *withRNN)
	if err != nil {
		log.Fatal(err)
	}
	if qmode != nn.QuantOff {
		// Applied after load/train, before serving: the fixed-point tables
		// derive from the resident weights on first use and survive model
		// hot paths for the daemon's lifetime. int32 is the certified
		// (<= 1e-6 score deviation, label-identical) serving mode. Reloaded
		// engine sets get the same mode applied during certification.
		for _, d := range set.Drivers() {
			if q, ok := engine.QuantizerOf(d); ok {
				q.SetQuantMode(qmode)
			}
		}
		log.Printf("quantized inference: %v", qmode)
	}
	reg, err := engine.NewRegistry(set)
	if err != nil {
		log.Fatal(err)
	}

	// The donor pool reuses the eval harness's generator stream (seed offset
	// 77000), so daemon attacks see the same benign donors as the offline
	// experiments at equal seeds.
	g := corpus.NewGenerator(*seed + 77000)
	pool := make([][]byte, *donors)
	for i := range pool {
		pool[i] = g.Sample(corpus.Benign).Raw
	}

	modelPath := *models
	cfg := server.Config{
		Registry: reg,
		Attack:   server.MPassAttack(reg, pool, *maxQueries),
		Quant:    qmode,
		// Reload re-reads the model path (or the request's ?path= override)
		// and hands the candidate set to the server's certify-then-swap.
		Reload: func(override string) (*engine.Set, error) {
			p := override
			if p == "" {
				p = modelPath
			}
			if p == "" {
				return nil, fmt.Errorf("no model path: pass ?path= or start mpassd with -models")
			}
			next, src, err := engine.LoadPath(p)
			if err != nil {
				return nil, err
			}
			log.Printf("reload: loaded %s", src)
			return next, nil
		},
		MaxBatch:        *maxBatch,
		BatchWindow:     *window,
		ScanQueue:       *scanQueue,
		CacheSize:       *cacheSize,
		AttackWorkers:   *attackWorkers,
		AttackQueue:     *attackQueue,
		RequestTimeout:  *timeout,
		StreamThreshold: *streamThreshold,
		StreamChunk:     *streamChunk,
		MaxStreamBytes:  *maxStreamBytes,
		JobDeadline:     *jobDeadline,
		JobTTL:          *jobTTL,
		MaxJobs:         *maxJobs,
		Seed:            *seed,
	}
	var tenants *tenant.Table
	if *tenantsPath != "" {
		tenants, err = tenant.LoadTable(*tenantsPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = tenants
		log.Printf("tenant auth on: %d tenants from %s", tenants.Len(), *tenantsPath)
	}
	if *faultHang > 0 || *faultError > 0 || *faultLatency > 0 {
		fcfg := faultinject.Config{
			Seed:        *faultSeed,
			HangRate:    *faultHang,
			ErrorRate:   *faultError,
			LatencyRate: *faultLatency,
			Latency:     *faultDelay,
		}
		// OracleWrap runs once per attack job; offset the seed per job so
		// short-query jobs don't all replay the same stream prefix (which
		// would make injection nearly inert at low rates).
		var faultSeq atomic.Int64
		cfg.OracleWrap = func(inner core.Oracle) core.Oracle {
			fc := fcfg
			fc.Seed += faultSeq.Add(1) * 104729
			return faultinject.Wrap(inner, fc)
		}
		log.Printf("FAULT INJECTION ON: hang=%.2f error=%.2f latency=%.2f/%v seed=%d (attack-oracle queries only)",
			*faultHang, *faultError, *faultLatency, *faultDelay, *faultSeed)
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s (models: %s)", bound, modelSource(*models))

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	// Serve blocks for the daemon's whole lifetime; the pool layer is for
	// bounded units of work, not a process-long accept loop.
	//lint:ignore nakedgo process-lifetime http accept loop, not pool work
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
wait:
	for {
		select {
		case s := <-sig:
			if s == syscall.SIGHUP {
				// SIGHUP re-reads the tenant allowlist in place; a bad file
				// logs and keeps the current table serving.
				if tenants == nil {
					log.Printf("SIGHUP ignored: no -tenants allowlist configured")
					continue
				}
				n, err := tenants.Reload()
				if err != nil {
					log.Printf("tenant reload failed (allowlist unchanged): %v", err)
					continue
				}
				srv.Metrics().TenantReloads.Add(1)
				log.Printf("tenant allowlist reloaded: %d tenants", n)
				continue
			}
			log.Printf("received %v, draining (deadline %v)", s, *drain)
			break wait
		case err := <-serveErr:
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// srv.Shutdown flips the draining flag immediately (new requests get
	// 503) and completes queued/running attack jobs; httpSrv.Shutdown waits
	// for in-flight handlers. They overlap so one slow half does not eat the
	// other's share of the drain budget.
	pipelineDone := make(chan error, 1)
	//lint:ignore nakedgo one-shot shutdown overlap; both halves share the drain deadline
	go func() { pipelineDone <- srv.Shutdown(ctx) }()
	httpErr := httpSrv.Shutdown(ctx)
	pipeErr := <-pipelineDone
	switch {
	case pipeErr != nil:
		log.Fatalf("drain incomplete: %v", pipeErr)
	case httpErr != nil:
		log.Fatalf("http shutdown: %v", httpErr)
	}
	log.Printf("drained cleanly")
}

// loadOrTrain resolves the resident engine set: load the model path (legacy
// suite gob or per-engine envelope directory) when it exists, otherwise
// train from the seed and persist when a path was given — a legacy suite
// file for a .gob path, per-engine envelopes for anything else. -rnn adds
// the RNN perplexity engine, training it in-process when the loaded set
// lacks one.
func loadOrTrain(path string, seed int64, nMal, nBen, workers int, withRNN bool) (*engine.Set, error) {
	var set *engine.Set
	trained := false
	if path != "" {
		loaded, src, err := engine.LoadPath(path)
		if err == nil {
			log.Printf("loaded models from %s", src)
			set = loaded
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		} else {
			log.Printf("%s not found, training from seed %d", path, seed)
		}
	} else {
		log.Printf("no -models path, training from seed %d", seed)
	}

	if set == nil {
		start := time.Now()
		ds := corpus.MakeAugmentedDataset(seed, nMal, nBen, 0.67)
		cfg := detect.DefaultTrainConfig()
		cfg.Seed = seed
		cfg.Workers = workers
		suite, err := detect.TrainSuite(ds, cfg)
		if err != nil {
			return nil, err
		}
		set, err = engine.FromSuite(suite)
		if err != nil {
			return nil, err
		}
		log.Printf("trained offline suite in %v", time.Since(start).Round(time.Millisecond))
		trained = true
	}

	if withRNN {
		if _, ok := set.Get("RNN-PPL"); !ok {
			start := time.Now()
			rcfg := engine.DefaultRNNConfig()
			rcfg.Seed = seed
			rnn, err := engine.TrainRNN(corpus.MakeAugmentedDataset(seed, nMal, nBen, 0.67), rcfg)
			if err != nil {
				return nil, err
			}
			drv, err := engine.NewRNNDriver(rnn)
			if err != nil {
				return nil, err
			}
			set, err = engine.NewSet(append(set.Drivers(), drv)...)
			if err != nil {
				return nil, err
			}
			log.Printf("trained RNN engine in %v", time.Since(start).Round(time.Millisecond))
			trained = true
		}
	}

	if trained && path != "" {
		if err := saveModels(path, set); err != nil {
			return nil, fmt.Errorf("saving %s: %w", path, err)
		}
		log.Printf("saved models to %s", path)
	}
	return set, nil
}

// saveModels persists a freshly trained set: a .gob path keeps the legacy
// monolithic suite form (runtime-only engines like the RNN cannot ride along
// there — use a directory to persist them), anything else becomes a
// directory of per-engine envelopes.
func saveModels(path string, set *engine.Set) error {
	if strings.HasSuffix(path, ".gob") {
		suite := &detect.Suite{}
		for _, d := range set.Drivers() {
			switch t := d.(type) {
			case *engine.ConvDriver:
				switch t.Name() {
				case "MalConv":
					suite.MalConv = t.ConvDetector
				case "NonNeg":
					suite.NonNeg = t.ConvDetector
				case "MalGCG":
					suite.MalGCG = t.ConvDetector
				}
			case *engine.GBDTDriver:
				suite.LGBM = t.GBDTDetector
			default:
				log.Printf("warning: engine %s is not part of the legacy suite form; use a -models directory to persist it", d.Name())
			}
		}
		return detect.SaveSuiteFile(path, suite)
	}
	return engine.SaveDir(path, set)
}

func modelSource(path string) string {
	if path == "" {
		return "in-process training"
	}
	return path
}
